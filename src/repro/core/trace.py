"""Bit-parallel trace engine: dense node × holiday occupancy matrices.

Every metric and validation question in this package reduces to queries over
the *occupancy trace* of a schedule prefix — "was node ``p`` happy at holiday
``t``?" for ``p`` in the graph and ``t`` in ``1..horizon``.  The historical
implementation (:class:`repro.core.metrics.HappinessTrace`) answers these by
materialising one ``frozenset`` per holiday and walking them node by node,
which caps practical horizons at a few tens of thousands.

:class:`TraceMatrix` stores the same information as a dense boolean matrix
with one row per node and one column per holiday, built **once** per run and
shared by the metric suite, the validator and the benchmark harness.  Two
storage backends implement the matrix:

``numpy``
    A ``numpy.ndarray`` of ``bool_`` — rows are contiguous byte vectors, so
    gap/run-length queries become ``flatnonzero``/``diff`` calls and edge
    collision tests become elementwise ``&`` reductions.  Selected by
    default whenever :mod:`numpy` is importable.

``bitmask``
    One arbitrary-precision Python integer per node, bit ``t - 1`` set when
    the node is happy at holiday ``t``.  CPython's big-int machinery gives
    64-bit-word-parallel ``&``/``|``/``popcount`` without any third-party
    dependency; this is the fallback that keeps numpy strictly optional.

Both backends expose identical query methods and are differentially tested
against the ``frozenset`` reference (``backend="sets"`` throughout
:mod:`repro.core.metrics`), which remains the semantic ground truth.

Memory trade-off — dense vs. stream: a dense numpy trace costs ``n ×
horizon`` bytes (numpy stores one byte per bool) and a dense bitmask trace
``n × horizon / 8`` bytes, so a 60-node workload at horizon 10⁶ is ~60 MB /
~7.5 MB respectively; every consumer reads every cell at least once, so
below that scale dense is the right call and remains the default.  Dense
stops scaling around horizon 10⁷–10⁸ (the same 60-node workload at 10⁸
would need ~6 GB), which is what the **streaming mode** removes:
:class:`TraceStream` yields the same occupancy information as fixed-width
:class:`TraceMatrix` chunks, and :class:`StreamedTrace` answers the full
query API by carrying gap/run-length state across chunk boundaries — O(n ×
chunk) resident bytes regardless of horizon.  ``horizon_mode="auto"``
(:func:`resolve_horizon_mode`) picks dense below
:data:`AUTO_STREAM_BYTES` and stream above it, so small-horizon numbers
never move while 10⁸-holiday horizons stay bounded.

Construction fast paths (see :meth:`TraceMatrix.from_schedule`):

* :class:`~repro.core.schedule.PeriodicSchedule` — rows are computed directly
  from the ``(period, phase)`` table, grouping nodes by period so each
  distinct period costs one ``arange % τ`` (numpy) or one doubling-fill
  (bitmask); **no happy set is ever constructed**.
* cyclic :class:`~repro.core.schedule.ExplicitSchedule` — one cycle of
  columns is filled and then tiled/repeated out to the horizon.
* everything else (including online :class:`~repro.core.schedule.GeneratorSchedule`
  runs and raw sequences of sets) — columns are filled from the materialised
  prefix in a single batched pass.

The streaming fast paths mirror these: periodic and cyclic schedules tile
straight into each chunk from the assignment table / one materialised cycle
(no prefix is ever built), while generic schedules materialise one chunk of
happy sets at a time.  :class:`~repro.core.schedule.GeneratorSchedule`
memoises what it has produced (its future depends on its past); constructed
with a ``window=`` it evicts holidays far behind the generation frontier, so
aperiodic generator-backed schedulers also stream at bounded memory (at the
price of supporting a single forward pass — see the class notes).

Parallel streaming (``jobs=``): :meth:`StreamedTrace._scan` folds chunks
through an *associative* accumulator (:meth:`_NodeStreamStats.absorb` per
chunk, :meth:`_NodeStreamStats.merge` across chunk ranges), so the summary
pass — and the dedicated per-appearance passes behind ``appearances`` /
``all_gaps`` — can be split into contiguous blocks of chunks evaluated on
worker processes and merged in order.  Because the periodic and cyclic fast
paths are offset-aware, a worker needs only ``(schedule, chunk range)`` — no
schedule prefix is ever shipped; raw happy-set sequences ship just the slice
a worker's block covers.  Generator-backed schedules, whose future depends
on their past, parallelise through the **checkpoint protocol**
(:class:`~repro.core.schedule.GeneratorSchedule` constructed with
``checkpoint=``/``restore=``): the parent runs the generator forward —
the inherently sequential part — snapshotting its state at every chunk
boundary, and each worker resumes a picklable
:class:`~repro.core.schedule.GeneratorCheckpoint` to regenerate and fold
its own block while the parent races ahead.  Non-checkpointable generator
schedules still fall back to the serial scan, now with one logged warning
naming the schedule and the reason.  Either way the determinism contract
holds: ``jobs=1`` and ``jobs=N`` produce *identical* summaries, collisions
and validation reports for every schedule kind (asserted by
``tests/core/test_stream_parallel.py`` and the checkpoint parity suite).
The legality scan parallelises the same way, and with ``fail_fast`` the
parent cancels every outstanding block past the first violating chunk.

Batched kernels (:class:`TraceBatch`): experiment campaigns evaluate many
schedules that differ only in the scheduler over the *same* graph and
horizon, and per-cell execution pays the construction dispatch, the summary
reductions and the per-edge legality AND once per schedule.  A
:class:`TraceBatch` stacks ``S`` compatible schedules into one ``S × n ×
horizon`` boolean tensor (numpy) or ``S`` lists of bitmask rows (pure
Python), built through the same periodic/cyclic fast paths broadcast across
the schedule axis — all rows with the same ``(period, phase)`` are filled
from one shared expansion regardless of which schedule they belong to.  One
stacked :meth:`~TraceBatch.scan` then answers the full summary query API
for every member at once: gap/run-length statistics come from a single
``nonzero``/``diff``/``reduceat`` sweep over the flattened ``S·n`` row
block, and one adjacency-masked pass per graph edge yields the collision
holidays of *all* members.  :meth:`TraceBatch.member` returns a lightweight
view with the :class:`TraceMatrix` query API (answered from the shared
scan) that plugs into the metric and validation entry points through their
``trace=`` parameter, so batched execution reuses the exact same
downstream code as per-cell execution and produces identical reports.
Oversized batches compose with streaming: in ``stream`` mode the members'
chunks are folded column-block by column-block through the same
associative accumulators, so resident memory is ``O(S × n × chunk)``.
"""

from __future__ import annotations

import logging
from concurrent.futures import ProcessPoolExecutor
from itertools import repeat
from typing import Dict, FrozenSet, Iterable, Iterator, List, Optional, Sequence, Tuple, Union

from repro.core.problem import ConflictGraph, Node
from repro.core.schedule import (
    ExplicitSchedule,
    GeneratorCheckpoint,
    GeneratorSchedule,
    PeriodicSchedule,
    Schedule,
)

_LOG = logging.getLogger(__name__)

try:  # numpy is an optional extra (``pip install .[fast]``)
    import numpy as _np
except ImportError:  # pragma: no cover - exercised on minimal installs
    _np = None

__all__ = [
    "TraceMatrix",
    "TraceStream",
    "StreamedTrace",
    "TraceBatch",
    "BACKENDS",
    "HORIZON_MODES",
    "DEFAULT_CHUNK",
    "AUTO_STREAM_BYTES",
    "dense_trace_bytes",
    "materialize_prefix",
    "numpy_available",
    "resolve_backend",
    "resolve_horizon_mode",
]

#: Backends accepted by :func:`resolve_backend`.  ``"sets"`` is *not* a
#: :class:`TraceMatrix` backend — it names the frozenset reference path and is
#: handled by the callers in :mod:`repro.core.metrics` / ``validation``.
BACKENDS = ("auto", "numpy", "bitmask")

#: Horizon representations accepted by :func:`resolve_horizon_mode`:
#: ``dense`` materialises one n × horizon matrix, ``stream`` evaluates
#: fixed-width chunks with carried state, ``auto`` picks by estimated size.
HORIZON_MODES = ("auto", "dense", "stream")

#: Default streaming chunk width (holidays per block).  At 60 nodes one
#: numpy chunk is ~15 MB — large enough to amortise per-chunk Python
#: overhead, small enough that a handful of live blocks stay cache-friendly.
DEFAULT_CHUNK = 1 << 18

#: ``auto`` switches from dense to stream when the dense matrix would exceed
#: this many bytes (256 MiB).  Every horizon the HorizonPolicy can pick on
#: its own stays far below it, so default runs never change representation.
AUTO_STREAM_BYTES = 1 << 28

#: Parallel streaming splits the chunk sequence into up to ``jobs`` × this
#: many contiguous blocks: more blocks than workers keeps the pool busy when
#: block costs are uneven and lets a ``fail_fast`` legality scan cancel
#: outstanding blocks at a finer granularity than one block per worker.
BLOCKS_PER_JOB = 4

ScheduleOrSets = Union[Schedule, Sequence[Iterable[Node]]]


def dense_trace_bytes(num_nodes: int, horizon: int, backend: str) -> int:
    """Estimated resident size of a dense trace (one byte per cell under
    numpy, one bit per cell under bitmask)."""
    cells = num_nodes * horizon
    return cells if backend == "numpy" else cells // 8


def resolve_horizon_mode(mode: str, num_nodes: int, horizon: int, backend: str) -> str:
    """Normalise a horizon mode, resolving ``"auto"`` by estimated memory.

    ``"dense"`` and ``"stream"`` pass through unchanged; ``"auto"`` picks
    ``"stream"`` exactly when the dense matrix
    (:func:`dense_trace_bytes`, which depends on the backend's cell width)
    would exceed :data:`AUTO_STREAM_BYTES`, so every horizon a default
    policy can choose stays dense and pre-streaming numbers never move.
    ``backend`` must already be resolved (``"numpy"`` or ``"bitmask"``);
    this is the one place the ``mode`` string is validated, shared by the
    metric, validation and runner entry points.
    """
    if mode not in HORIZON_MODES:
        raise ValueError(f"unknown horizon mode {mode!r}; expected one of {HORIZON_MODES}")
    if mode == "auto":
        if dense_trace_bytes(num_nodes, horizon, backend) > AUTO_STREAM_BYTES:
            return "stream"
        return "dense"
    return mode


def numpy_available() -> bool:
    """True when the numpy backend can be used in this interpreter."""
    return _np is not None


def materialize_prefix(schedule: ScheduleOrSets, horizon: int) -> Sequence[FrozenSet[Node]]:
    """The first ``horizon`` happy sets of a schedule or raw sequence, as
    frozensets — the single materialization used by both the trace builder
    and :func:`repro.core.metrics.materialize`."""
    if isinstance(schedule, Schedule):
        return schedule.prefix(horizon)
    sets = [frozenset(s) for s in schedule[:horizon]]
    if len(sets) < horizon:
        raise ValueError(
            f"explicit sequence has only {len(sets)} holidays, requested horizon {horizon}"
        )
    return sets


def resolve_backend(backend: str) -> str:
    """Normalise a backend name, resolving ``"auto"`` to the fastest available."""
    if backend == "auto":
        return "numpy" if _np is not None else "bitmask"
    if backend not in ("numpy", "bitmask"):
        raise ValueError(
            f"unknown trace backend {backend!r}; expected one of {BACKENDS} (or 'sets' "
            f"at the metrics/validation layer)"
        )
    if backend == "numpy" and _np is None:
        raise RuntimeError("trace backend 'numpy' requested but numpy is not installed")
    return backend


class TraceMatrix:
    """A node × holiday boolean occupancy matrix over a finite horizon.

    Rows follow the graph's deterministic node order; column ``j`` is holiday
    ``j + 1`` (holidays are 1-indexed throughout the package).  Instances are
    immutable once built; construct them through :meth:`from_schedule`.

    Attributes:
        graph: the conflict graph the trace was observed on.
        horizon: number of holidays covered (columns).
        backend: resolved storage backend, ``"numpy"`` or ``"bitmask"``.
        unknown: ``(holiday, node)`` pairs scheduled by the source but absent
            from the graph — impossible for :class:`Schedule` sources that
            validate, possible for raw sequences; consumed by the validator.
    """

    #: representation tag, mirrored by :class:`StreamedTrace` (``"stream"``).
    mode = "dense"

    def __init__(
        self,
        graph: ConflictGraph,
        horizon: int,
        backend: str,
        rows_numpy=None,
        rows_bitmask: Optional[List[int]] = None,
        unknown: Optional[List[Tuple[int, Node]]] = None,
    ) -> None:
        self.graph = graph
        self.horizon = horizon
        self.backend = backend
        self._order: List[Node] = graph.nodes()
        self._index: Dict[Node, int] = {p: i for i, p in enumerate(self._order)}
        self._matrix = rows_numpy
        self._bits: List[int] = rows_bitmask if rows_bitmask is not None else []
        self.unknown: List[Tuple[int, Node]] = unknown or []

    # -- construction --------------------------------------------------------------
    @classmethod
    def from_schedule(
        cls,
        schedule: ScheduleOrSets,
        graph: ConflictGraph,
        horizon: int,
        backend: str = "auto",
    ) -> "TraceMatrix":
        """Observe ``horizon`` holidays of ``schedule`` into a new matrix.

        Dispatches to the periodic fast path, the cyclic tiling path, or the
        generic batched column fill depending on the schedule type.
        """
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon!r}")
        backend = resolve_backend(backend)
        # The periodic fast path reads the assignment table directly, so it is
        # only valid when the table covers exactly the nodes being observed;
        # evaluating a schedule against a different graph (extra or missing
        # nodes) goes through the generic set fill, which tracks unknowns.
        if isinstance(schedule, PeriodicSchedule) and set(schedule.assignments) == set(graph.nodes()):
            return cls._from_periodic(schedule, graph, horizon, backend)
        if isinstance(schedule, ExplicitSchedule) and schedule.is_periodic() and 0 < len(schedule) < horizon:
            return cls._from_cyclic_explicit(schedule, graph, horizon, backend)
        return cls._from_sets(materialize_prefix(schedule, horizon), graph, horizon, backend)

    @classmethod
    def _from_periodic(
        cls,
        schedule: PeriodicSchedule,
        graph: ConflictGraph,
        horizon: int,
        backend: str,
        start: int = 1,
    ) -> "TraceMatrix":
        """Vectorized build from a ``{node: (period, phase)}`` table.

        Nodes are grouped by period so each distinct period τ is expanded
        exactly once — one ``arange % τ`` under numpy, one doubling-fill per
        (τ, phase) under bitmask.  No per-holiday set is constructed.

        ``start`` shifts the observation window: column ``j`` covers holiday
        ``start + j``, which is how :class:`TraceStream` tiles the table
        straight into each chunk without materialising any prefix.
        """
        order = graph.nodes()
        by_period: Dict[int, List[Tuple[int, int]]] = {}
        for i, p in enumerate(order):
            slot = schedule.assignments[p]
            by_period.setdefault(slot.period, []).append((i, slot.phase))

        if backend == "numpy":
            matrix = _np.zeros((len(order), horizon), dtype=_np.bool_)
            holidays = _np.arange(start, start + horizon, dtype=_np.int64)
            for period, members in by_period.items():
                mod = holidays % period
                rows = _np.fromiter((i for i, _ in members), dtype=_np.intp, count=len(members))
                phases = _np.fromiter((ph for _, ph in members), dtype=_np.int64, count=len(members))
                matrix[rows] = mod[_np.newaxis, :] == phases[:, _np.newaxis]
            return cls(graph, horizon, backend, rows_numpy=matrix)

        bits = [0] * len(order)
        pattern_cache: Dict[Tuple[int, int], int] = {}
        for period, members in by_period.items():
            for i, phase in members:
                key = (period, phase)
                if key not in pattern_cache:
                    pattern_cache[key] = _periodic_bitmask_window(period, phase, start, horizon)
                bits[i] = pattern_cache[key]
        return cls(graph, horizon, backend, rows_bitmask=bits)

    @classmethod
    def _from_cyclic_explicit(
        cls, schedule: ExplicitSchedule, graph: ConflictGraph, horizon: int, backend: str
    ) -> "TraceMatrix":
        """Fill one cycle of columns, then tile it out to the horizon."""
        cycle = [schedule.happy_set(t) for t in range(1, len(schedule) + 1)]
        base = cls._from_sets(cycle, graph, len(cycle), backend)
        reps = -(-horizon // len(cycle))  # ceil division
        unknown = sorted(
            (
                (t0 + k * len(cycle), p)
                for t0, p in base.unknown
                for k in range(reps)
                if t0 + k * len(cycle) <= horizon
            ),
            key=lambda pair: pair[0],
        )
        if backend == "numpy":
            matrix = _np.tile(base._matrix, (1, reps))[:, :horizon]
            return cls(graph, horizon, backend, rows_numpy=_np.ascontiguousarray(matrix),
                       unknown=unknown)
        mask = (1 << horizon) - 1
        bits = [_repeat_bitmask(row, len(cycle), reps) & mask for row in base._bits]
        return cls(graph, horizon, backend, rows_bitmask=bits, unknown=unknown)

    @classmethod
    def _from_sets(
        cls, sets: Sequence[FrozenSet[Node]], graph: ConflictGraph, horizon: int, backend: str
    ) -> "TraceMatrix":
        """Batched column fill from a materialised prefix of happy sets."""
        order = graph.nodes()
        index = {p: i for i, p in enumerate(order)}
        unknown: List[Tuple[int, Node]] = []
        if backend == "numpy":
            # Schedules usually repeat happy sets heavily (periodic phases,
            # greedy cycles), and frozensets cache their hash — so dedup the
            # columns, fill one column per *distinct* set and assemble the
            # matrix with one vectorized gather.  A small sample decides
            # whether dedup pays: randomized schedules with (almost) all
            # columns distinct go through a direct scatter instead.
            sample = sets[:256]
            if len(sample) >= 64 and len(set(sample)) > 0.9 * len(sample):
                matrix = _np.zeros((len(order), horizon), dtype=_np.bool_)
                _scatter_columns(
                    matrix, enumerate(sets), index,
                    on_unknown=lambda j, p: unknown.append((j + 1, p)),
                )
                return cls(graph, horizon, backend, rows_numpy=matrix, unknown=unknown)

            ids: Dict[FrozenSet[Node], int] = {}
            uniques: List[FrozenSet[Node]] = []
            col_ids: List[int] = []
            for happy in sets:
                fs = happy if isinstance(happy, frozenset) else frozenset(happy)
                sid = ids.get(fs)
                if sid is None:
                    sid = len(uniques)
                    ids[fs] = sid
                    uniques.append(fs)
                col_ids.append(sid)
            distinct = _np.zeros((len(order), max(len(uniques), 1)), dtype=_np.bool_)
            unknown_members: List[List[Node]] = [[] for _ in uniques]
            _scatter_columns(
                distinct, enumerate(uniques), index,
                on_unknown=lambda sid, p: unknown_members[sid].append(p),
            )
            if any(unknown_members):
                for j, sid in enumerate(col_ids):
                    for p in unknown_members[sid]:
                        unknown.append((j + 1, p))
            matrix = distinct[:, _np.asarray(col_ids, dtype=_np.intp)]
            return cls(graph, horizon, backend, rows_numpy=matrix, unknown=unknown)
        buffers = [bytearray((horizon + 7) // 8) for _ in order]
        for j, happy in enumerate(sets):
            for p in happy:
                i = index.get(p)
                if i is None:
                    unknown.append((j + 1, p))
                else:
                    buffers[i][j >> 3] |= 1 << (j & 7)
        bits = [int.from_bytes(buf, "little") for buf in buffers]
        return cls(graph, horizon, backend, rows_bitmask=bits, unknown=unknown)

    # -- per-node queries ----------------------------------------------------------
    def row_index(self, node: Node) -> int:
        """Row of ``node`` in the matrix (KeyError for unknown nodes)."""
        return self._index[node]

    def appearances(self, node: Node) -> List[int]:
        """Sorted 1-indexed holidays at which ``node`` is happy."""
        if self.backend == "numpy":
            return (_np.flatnonzero(self._matrix[self._index[node]]) + 1).tolist()
        return _bit_positions(self._bits[self._index[node]], offset=1)

    def count(self, node: Node) -> int:
        """Number of holidays within the horizon at which ``node`` is happy."""
        if self.backend == "numpy":
            return int(self._matrix[self._index[node]].sum())
        return _popcount(self._bits[self._index[node]])

    def gaps(self, node: Node) -> List[int]:
        """Unhappiness interval lengths, identical in semantics to
        :meth:`repro.core.metrics.HappinessTrace.gaps`: the run before the
        first appearance, runs between consecutive appearances, and the run
        after the last appearance; ``[horizon]`` for a never-happy node."""
        times = self.appearances(node)
        if not times:
            return [self.horizon]
        gaps = [times[0] - 1]
        gaps.extend(b - a - 1 for a, b in zip(times, times[1:]))
        gaps.append(self.horizon - times[-1])
        return gaps

    def mul(self, node: Node) -> int:
        """Maximum unhappiness length of ``node`` within the horizon."""
        if self.backend == "numpy":
            row = self._matrix[self._index[node]]
            idx = _np.flatnonzero(row)
            if idx.size == 0:
                return self.horizon
            # run-length encoding of the zero runs via diff over the padded
            # appearance positions: [-1] + idx + [horizon]
            before = int(idx[0])
            after = self.horizon - 1 - int(idx[-1])
            between = int(_np.diff(idx).max() - 1) if idx.size > 1 else 0
            return max(before, after, between)
        return max(self.gaps(node))

    def appearance_diffs(self, node: Node) -> List[int]:
        """Differences between consecutive appearances (empty if < 2)."""
        times = self.appearances(node)
        return [b - a for a, b in zip(times, times[1:])]

    def distinct_appearance_diffs(self, node: Node) -> List[int]:
        """Sorted distinct inter-appearance differences of ``node``.

        This is the summary the periodicity certifier needs — it never
        requires the full O(appearances) diff list, which is what lets the
        streaming engine answer the same question at bounded memory.
        """
        if self.backend == "numpy":
            idx = _np.flatnonzero(self._matrix[self._index[node]])
            if idx.size < 2:
                return []
            return _np.unique(_np.diff(idx)).tolist()
        return sorted(set(self.appearance_diffs(node)))

    def observed_period(self, node: Node) -> Optional[int]:
        """The constant inter-appearance difference, or None (matches the
        reference: fewer than two appearances is "insufficient evidence")."""
        if self.backend == "numpy":
            idx = _np.flatnonzero(self._matrix[self._index[node]])
            if idx.size < 2:
                return None
            diffs = _np.diff(idx)
            first = int(diffs[0])
            return first if bool((diffs == first).all()) else None
        diffs = self.appearance_diffs(node)
        if not diffs:
            return None
        first = diffs[0]
        return first if all(d == first for d in diffs) else None

    def happiness_rate(self, node: Node) -> float:
        """Fraction of observed holidays at which ``node`` was happy."""
        return self.count(node) / self.horizon

    # -- bulk queries --------------------------------------------------------------
    def muls(self) -> Dict[Node, int]:
        """``{node: mul(node)}`` for every node, in graph order."""
        return {p: self.mul(p) for p in self._order}

    def all_gaps(self) -> Dict[Node, List[int]]:
        """``{node: gap list}`` for every node."""
        return {p: self.gaps(p) for p in self._order}

    def observed_periods(self) -> Dict[Node, Optional[int]]:
        """``{node: observed period or None}`` for every node."""
        return {p: self.observed_period(p) for p in self._order}

    def happiness_rates(self) -> Dict[Node, float]:
        """``{node: happiness rate}`` for every node."""
        if self.backend == "numpy" and len(self._order) > 0:
            counts = self._matrix.sum(axis=1)
            return {p: int(counts[i]) / self.horizon for i, p in enumerate(self._order)}
        return {p: self.happiness_rate(p) for p in self._order}

    # -- column / edge queries -----------------------------------------------------
    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        """The recorded happy set at ``holiday`` (known nodes only)."""
        if not (1 <= holiday <= self.horizon):
            raise ValueError(f"holiday {holiday} outside recorded horizon 1..{self.horizon}")
        if self.backend == "numpy":
            col = _np.flatnonzero(self._matrix[:, holiday - 1])
            return frozenset(self._order[i] for i in col)
        bit = 1 << (holiday - 1)
        return frozenset(p for i, p in enumerate(self._order) if self._bits[i] & bit)

    def edge_collisions(self, u: Node, v: Node) -> List[int]:
        """Holidays at which ``u`` and ``v`` are simultaneously happy.

        This is the adjacency-masked column test: a single vectorized AND of
        the two rows replaces a per-holiday membership scan.
        """
        i, j = self._index[u], self._index[v]
        if self.backend == "numpy":
            both = self._matrix[i] & self._matrix[j]
            return (_np.flatnonzero(both) + 1).tolist()
        return _bit_positions(self._bits[i] & self._bits[j], offset=1)

    def conflicting_holidays(self) -> Dict[int, List[Tuple[Node, Node]]]:
        """``{holiday: [(u, v), ...]}`` over all graph edges with collisions."""
        out: Dict[int, List[Tuple[Node, Node]]] = {}
        for u, v in self.graph.edges():
            for t in self.edge_collisions(u, v):
                out.setdefault(t, []).append((u, v))
        return out


class TraceStream:
    """Chunked view of a schedule's occupancy trace: ``(start, TraceMatrix)``
    blocks of at most ``chunk`` holidays, covering ``1..horizon`` in order.

    Each yielded block is an ordinary :class:`TraceMatrix` whose *local*
    column ``j`` (holiday ``j + 1`` inside the block) covers *global*
    holiday ``start + j``; ``block.unknown`` holidays are local too.  The
    stream is re-iterable — every ``__iter__`` rebuilds blocks from the
    schedule — and only one block is ever resident, so memory is
    ``O(n × chunk)`` regardless of horizon.

    Fast paths, chosen once at construction:

    * :class:`~repro.core.schedule.PeriodicSchedule` (covering exactly the
      graph's nodes) — every chunk comes straight from the ``(period,
      phase)`` table shifted to the chunk's window; no prefix exists at any
      point.
    * cyclic :class:`~repro.core.schedule.ExplicitSchedule` — one cycle is
      materialised once, then every chunk is a rotated tiling of it.
    * everything else — one chunk of happy sets is materialised at a time
      (for :class:`~repro.core.schedule.GeneratorSchedule` the schedule's
      own memoisation still grows with the horizon; see the module notes).
    """

    def __init__(
        self,
        schedule: ScheduleOrSets,
        graph: ConflictGraph,
        horizon: int,
        chunk: Optional[int] = None,
        backend: str = "auto",
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon!r}")
        self.chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
        if self.chunk < 1:
            raise ValueError(f"chunk width must be >= 1, got {chunk!r}")
        self.schedule = schedule
        self.graph = graph
        self.horizon = horizon
        self.backend = resolve_backend(backend)
        self._cycle: Optional[TraceMatrix] = None
        if isinstance(schedule, PeriodicSchedule) and set(schedule.assignments) == set(graph.nodes()):
            self._kind = "periodic"
        elif isinstance(schedule, ExplicitSchedule) and schedule.is_periodic() and len(schedule) > 0:
            self._kind = "cyclic"
        else:
            self._kind = "sets"
            if not isinstance(schedule, Schedule) and len(schedule) < horizon:
                raise ValueError(
                    f"explicit sequence has only {len(schedule)} holidays, "
                    f"requested horizon {horizon}"
                )

    def num_chunks(self) -> int:
        """Number of blocks the stream yields."""
        return -(-self.horizon // self.chunk)

    def __iter__(self) -> Iterator[Tuple[int, TraceMatrix]]:
        start = 1
        while start <= self.horizon:
            width = min(self.chunk, self.horizon - start + 1)
            yield start, self.block(start, width)
            start += width

    def block(self, start: int, width: int) -> TraceMatrix:
        """Build the single block covering holidays ``start..start+width-1``."""
        if self._kind == "periodic":
            return TraceMatrix._from_periodic(
                self.schedule, self.graph, width, self.backend, start=start
            )
        if self._kind == "cyclic":
            return self._cyclic_block(start, width)
        return TraceMatrix._from_sets(
            self._window_sets(start, width), self.graph, width, self.backend
        )

    def _window_sets(self, start: int, width: int) -> Sequence[FrozenSet[Node]]:
        if isinstance(self.schedule, Schedule):
            return self.schedule.prefix(width, start=start)
        return [frozenset(s) for s in self.schedule[start - 1 : start - 1 + width]]

    def _cycle_base(self) -> TraceMatrix:
        """The one materialised cycle every cyclic chunk is tiled from."""
        if self._cycle is None:
            length = len(self.schedule)
            cycle = [self.schedule.happy_set(t) for t in range(1, length + 1)]
            self._cycle = TraceMatrix._from_sets(cycle, self.graph, length, self.backend)
        return self._cycle

    def _cyclic_block(self, start: int, width: int) -> TraceMatrix:
        base = self._cycle_base()
        length = base.horizon
        offset = (start - 1) % length
        unknown: List[Tuple[int, Node]] = []
        for t0, p in base.unknown:
            # occurrences of cycle holiday t0 within [start, start + width - 1]
            t = t0 + max(0, -(-(start - t0) // length)) * length
            while t <= start + width - 1:
                unknown.append((t - start + 1, p))
                t += length
        unknown.sort(key=lambda pair: pair[0])
        if self.backend == "numpy":
            cols = (offset + _np.arange(width, dtype=_np.intp)) % length
            block = _np.ascontiguousarray(base._matrix[:, cols])
            return TraceMatrix(self.graph, width, self.backend, rows_numpy=block, unknown=unknown)
        reps = -(-(offset + width) // length)
        mask = (1 << width) - 1
        bits = [(_repeat_bitmask(row, length, reps) >> offset) & mask for row in base._bits]
        return TraceMatrix(self.graph, width, self.backend, rows_bitmask=bits, unknown=unknown)


class _NodeStreamStats:
    """Per-node run-length state carried across chunk boundaries.

    The state is an *associative* summary of an ascending appearance
    sequence: :meth:`absorb` folds one chunk's positions in at the right
    edge, and :meth:`merge` combines two summaries of adjacent holiday
    ranges — which is what lets a parallel scan evaluate contiguous blocks
    of chunks in worker processes and combine the partial summaries in spec
    order, yielding exactly the state a serial left-to-right pass builds.
    Instances are plain ``__slots__`` objects and pickle across process
    boundaries as-is.
    """

    __slots__ = ("count", "first", "last", "max_diff", "diffs")

    def __init__(self) -> None:
        self.count = 0        # appearances seen so far
        self.first = 0        # global holiday of the first appearance
        self.last = 0         # global holiday of the latest appearance
        self.max_diff = 0     # largest inter-appearance difference
        self.diffs: set = set()  # distinct inter-appearance differences

    def absorb(self, positions: Sequence[int]) -> None:
        """Fold a chunk's (ascending, global) appearance holidays in."""
        if not positions:
            return
        if self.count:
            boundary = positions[0] - self.last
            self.diffs.add(boundary)
            if boundary > self.max_diff:
                self.max_diff = boundary
        else:
            self.first = positions[0]
        for a, b in zip(positions, positions[1:]):
            d = b - a
            self.diffs.add(d)
            if d > self.max_diff:
                self.max_diff = d
        self.count += len(positions)
        self.last = positions[-1]

    def merge(self, later: "_NodeStreamStats") -> None:
        """Fold in the summary of the holiday range immediately after ours.

        Equivalent to having absorbed ``later``'s positions directly: the
        only information spanning the boundary is the gap between our last
        appearance and ``later``'s first, which becomes one more observed
        inter-appearance difference.
        """
        if later.count == 0:
            return
        if self.count:
            boundary = later.first - self.last
            self.diffs.add(boundary)
            if boundary > self.max_diff:
                self.max_diff = boundary
        else:
            self.first = later.first
        self.diffs.update(later.diffs)
        if later.max_diff > self.max_diff:
            self.max_diff = later.max_diff
        self.count += later.count
        self.last = later.last


def _fold_summary_block(
    start: int,
    block: TraceMatrix,
    backend: str,
    stats: List[_NodeStreamStats],
    edge_rows: Sequence[Tuple[int, int]],
    collisions: List[List[int]],
    unknown: List[Tuple[int, Node]],
) -> None:
    """Fold one ``(global start, block)`` pair into summary accumulators.

    This is the per-chunk body shared verbatim by the serial summary pass
    and the parallel block workers, so both produce identical state by
    construction.  The numpy arm inlines :meth:`_NodeStreamStats.absorb`
    over index arrays instead of Python position lists.
    """
    for t, p in block.unknown:
        unknown.append((start + t - 1, p))
    if backend == "numpy":
        matrix = block._matrix
        for i, node_stats in enumerate(stats):
            idx = _np.flatnonzero(matrix[i])
            if idx.size == 0:
                continue
            first = start + int(idx[0])
            if node_stats.count:
                boundary = first - node_stats.last
                node_stats.diffs.add(boundary)
                if boundary > node_stats.max_diff:
                    node_stats.max_diff = boundary
            else:
                node_stats.first = first
            if idx.size > 1:
                diffs = _np.diff(idx)
                dmax = int(diffs.max())
                if dmax > node_stats.max_diff:
                    node_stats.max_diff = dmax
                if dmax == int(diffs.min()):  # constant — the common periodic case
                    node_stats.diffs.add(dmax)
                else:
                    node_stats.diffs.update(_np.unique(diffs).tolist())
            node_stats.count += int(idx.size)
            node_stats.last = start + int(idx[-1])
        for k, (i, j) in enumerate(edge_rows):
            both = matrix[i] & matrix[j]
            if both.any():
                collisions[k].extend((start + _np.flatnonzero(both)).tolist())
    else:
        for i, node_stats in enumerate(stats):
            node_stats.absorb(_bit_positions(block._bits[i], offset=start))
        for k, (i, j) in enumerate(edge_rows):
            both = block._bits[i] & block._bits[j]
            if both:
                collisions[k].extend(_bit_positions(both, offset=start))


def _fold_legality_block(
    start: int,
    block: TraceMatrix,
    backend: str,
    edges: Sequence[Tuple[Node, Node]],
    edge_rows: Sequence[Tuple[int, int]],
    unknown_by_holiday: Dict[int, List[Node]],
    collisions: Dict[int, List[Tuple[Node, Node]]],
) -> None:
    """Fold one block's legality evidence (against an arbitrary edge list)
    into the per-holiday dictionaries — shared by the serial legality scan
    and the parallel legality block workers."""
    for t, p in block.unknown:
        unknown_by_holiday.setdefault(start + t - 1, []).append(p)
    for (u, v), (i, j) in zip(edges, edge_rows):
        if backend == "numpy":
            both = block._matrix[i] & block._matrix[j]
            hits = (start + _np.flatnonzero(both)).tolist() if both.any() else []
        else:
            both = block._bits[i] & block._bits[j]
            hits = _bit_positions(both, offset=start) if both else []
        for t in hits:
            collisions.setdefault(t, []).append((u, v))


def _chunk_blocks(num_chunks: int, parts: int) -> List[Tuple[int, int]]:
    """Split chunk indices ``0..num_chunks-1`` into at most ``parts``
    contiguous ``(first_chunk, chunk_count)`` blocks of near-equal size."""
    parts = max(1, min(parts, num_chunks))
    base, extra = divmod(num_chunks, parts)
    blocks: List[Tuple[int, int]] = []
    first = 0
    for b in range(parts):
        count = base + (1 if b < extra else 0)
        blocks.append((first, count))
        first += count
    return blocks


class _CheckpointPlan:
    """Per-chunk resume points of a checkpointable generator schedule.

    The parent-side half of the checkpoint protocol: as the (inherently
    sequential) generator is run forward, :meth:`ensure` snapshots its
    state at every chunk boundary into picklable
    :class:`~repro.core.schedule.GeneratorCheckpoint` handles.  Handle
    ``k`` resumes generation at holiday ``k·chunk + 1``, so any worker —
    or any later serial pass — can rebuild chunk ``k`` without replaying
    the prefix before it.  Capture is incremental: the parallel scans
    snapshot just far enough to submit each block and keep advancing while
    workers fold, and the serial scan snapshots as a side effect of its
    own forward pass, so ``jobs=1`` and ``jobs=N`` traces end up with the
    same replay capability (part of the determinism contract).
    """

    def __init__(self, schedule: GeneratorSchedule, chunk: int, num_chunks: int) -> None:
        self.schedule = schedule
        self.chunk = chunk
        self.num_chunks = num_chunks
        self.handles: List[GeneratorCheckpoint] = []

    @property
    def complete(self) -> bool:
        """True once every chunk has a resume handle."""
        return len(self.handles) == self.num_chunks

    def ensure(self, chunk_index: int) -> None:
        """Capture handles for chunks ``0..chunk_index``, advancing the
        generator to each boundary (its frontier must not be past the next
        uncaptured boundary — true for any in-order pass)."""
        while len(self.handles) <= chunk_index:
            boundary = len(self.handles) * self.chunk
            if self.schedule.frontier() < boundary:
                self.schedule.happy_set(boundary)  # generate up to the boundary
            self.handles.append(self.schedule.checkpoint_handle(boundary))

    def ensure_all(self) -> None:
        """Capture the remaining handles (one full parent forward pass)."""
        self.ensure(self.num_chunks - 1)


def _resume_payload_schedule(schedule) -> ScheduleOrSets:
    """Worker-side half of the checkpoint protocol: payloads may carry a
    :class:`~repro.core.schedule.GeneratorCheckpoint` instead of a schedule."""
    if isinstance(schedule, GeneratorCheckpoint):
        return schedule.resume()
    return schedule


def _summary_block_worker(payload) -> Tuple[List[_NodeStreamStats], List[List[int]], List[Tuple[int, Node]]]:
    """Process-pool entry point: build and scan one contiguous chunk block.

    ``payload`` is ``(schedule, graph, horizon, chunk, backend, first_chunk,
    chunk_count, offset)`` where ``schedule`` is either the full schedule
    (periodic/cyclic/explicit — the offset-aware fast paths rebuild any
    chunk from it directly), a :class:`~repro.core.schedule.GeneratorCheckpoint`
    resuming a generator at the block's first boundary, or, for raw
    happy-set sequences, just the slice covering this block with ``offset``
    holding the global holiday shift.
    Returns the block's partial summary: per-node stats, per-edge collision
    holidays (edge order = ``graph.edges()``), and global unknown pairs.
    """
    schedule, graph, horizon, chunk, backend, first_chunk, chunk_count, offset = payload
    schedule = _resume_payload_schedule(schedule)
    stream = TraceStream(schedule, graph, horizon, chunk=chunk, backend=backend)
    order = graph.nodes()
    index = {p: i for i, p in enumerate(order)}
    edges = graph.edges()
    edge_rows = [(index[u], index[v]) for u, v in edges]
    stats = [_NodeStreamStats() for _ in order]
    collisions: List[List[int]] = [[] for _ in edges]
    unknown: List[Tuple[int, Node]] = []
    for k in range(first_chunk, first_chunk + chunk_count):
        start = k * chunk + 1
        width = min(chunk, horizon - start + 1)
        block = stream.block(start, width)
        _fold_summary_block(offset + start, block, backend, stats, edge_rows, collisions, unknown)
    return stats, collisions, unknown


def _legality_block_worker(payload) -> Tuple[Dict[int, List[Node]], Dict[int, List[Tuple[Node, Node]]]]:
    """Process-pool entry point: legality-scan one contiguous chunk block.

    Same payload convention as :func:`_summary_block_worker` plus the edge
    list to test (which may differ from the trace graph's own edges), its
    precomputed row pairs, and the ``fail_fast`` flag.  With ``fail_fast``
    the worker stops after the first chunk *in its block* containing any
    violation, so the returned dictionaries hold exactly that chunk's
    evidence — the same truncation a serial scan applies.
    """
    (schedule, graph, horizon, chunk, backend, first_chunk, chunk_count, offset,
     edges, edge_rows, fail_fast) = payload
    schedule = _resume_payload_schedule(schedule)
    stream = TraceStream(schedule, graph, horizon, chunk=chunk, backend=backend)
    unknown_by_holiday: Dict[int, List[Node]] = {}
    collisions: Dict[int, List[Tuple[Node, Node]]] = {}
    for k in range(first_chunk, first_chunk + chunk_count):
        start = k * chunk + 1
        width = min(chunk, horizon - start + 1)
        block = stream.block(start, width)
        _fold_legality_block(
            offset + start, block, backend, edges, edge_rows, unknown_by_holiday, collisions
        )
        if fail_fast and (unknown_by_holiday or collisions):
            break
    return unknown_by_holiday, collisions


def _appearance_block_worker(payload) -> List[List[int]]:
    """Process-pool entry point: collect per-row appearance holidays of one
    contiguous chunk block.

    Same payload convention as :func:`_summary_block_worker` plus the list
    of row indices to collect.  Returns, for each requested row in order,
    the ascending *global* appearance holidays within the block — the
    per-appearance analogue of the partial summaries: appending block
    results in block order reproduces exactly the serial pass's lists
    (concatenation of ascending runs over adjacent holiday ranges is the
    associative merge here).
    """
    (schedule, graph, horizon, chunk, backend, first_chunk, chunk_count, offset, rows) = payload
    schedule = _resume_payload_schedule(schedule)
    stream = TraceStream(schedule, graph, horizon, chunk=chunk, backend=backend)
    out: List[List[int]] = [[] for _ in rows]
    for k in range(first_chunk, first_chunk + chunk_count):
        start = k * chunk + 1
        width = min(chunk, horizon - start + 1)
        block = stream.block(start, width)
        for slot, row in enumerate(rows):
            if backend == "numpy":
                out[slot].extend((offset + start + _np.flatnonzero(block._matrix[row])).tolist())
            else:
                out[slot].extend(_bit_positions(block._bits[row], offset=offset + start))
    return out


class StreamedTrace:
    """Streaming counterpart of :class:`TraceMatrix`: same query API, chunked
    evaluation, ``O(n × chunk)`` resident memory.

    The first summary query triggers **one pass** over a
    :class:`TraceStream`, accumulating per-node gap/run-length state
    (:class:`_NodeStreamStats`) and per-edge collision holidays across chunk
    boundaries; every summary query — ``muls``/``observed_periods``/
    ``happiness_rates``/``edge_collisions``/``unknown`` — is then answered
    from that cached state, so the metric suite and the validator share a
    single pass exactly the way they share one dense matrix.

    Queries that *return* per-appearance data (``appearances``, ``gaps``,
    ``all_gaps``) stream a dedicated pass and are O(appearances) in their
    output — inherent to the question, not to the engine.  Differential
    tests (``tests/core/test_stream.py``) assert exact agreement with the
    dense engine on every query, backend and chunk width.

    Parallelism: with ``jobs > 1`` the summary pass, the legality scan
    *and* the dedicated per-appearance passes split the chunk sequence
    into contiguous blocks evaluated on worker processes and merged in
    order — possible because every accumulator involved is associative and
    the periodic/cyclic fast paths can build any chunk from ``(schedule,
    chunk range)`` alone.  Raw happy-set sequences ship each worker only
    its block's slice.  Generator-backed schedules — whose future depends
    on their past — parallelise when they implement the **checkpoint
    protocol** (:class:`~repro.core.schedule.GeneratorSchedule` built with
    ``checkpoint=``/``restore=``): the parent runs the generator forward,
    snapshotting its state at every chunk boundary into a
    :class:`_CheckpointPlan`, and each worker resumes a picklable
    :class:`~repro.core.schedule.GeneratorCheckpoint` to regenerate its
    own block while the parent keeps generating ahead of the pool.  The
    cached per-chunk handles double as replay points, so second passes
    (``appearances``/``all_gaps``/``happy_set``) work even on windowed
    generators whose history was evicted.  A generator schedule *without*
    the protocol (or with ``checkpoint=False`` on the trace) still runs
    the serial scan — with one logged warning naming the schedule and the
    reason when ``jobs > 1`` silently degrades.  Determinism contract:
    ``jobs`` never changes any result — ``jobs=1`` and ``jobs=N`` produce
    identical summaries, reports and violation lists, so ``jobs`` is purely
    a wall-clock knob (asserted by ``tests/core/test_stream_parallel.py``
    and ``tests/core/test_checkpoint.py``).
    """

    #: representation tag, mirroring :attr:`TraceMatrix.mode`.
    mode = "stream"

    def __init__(
        self,
        schedule: ScheduleOrSets,
        graph: ConflictGraph,
        horizon: int,
        backend: str = "auto",
        chunk: Optional[int] = None,
        jobs: int = 1,
        checkpoint: bool = True,
    ) -> None:
        self.graph = graph
        self.horizon = horizon
        self.backend = resolve_backend(backend)
        self.chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
        self.jobs = int(jobs)
        if self.jobs < 1:
            raise ValueError(f"jobs must be >= 1, got {jobs!r}")
        self.schedule = schedule
        self.checkpoint = bool(checkpoint)
        self._order: List[Node] = graph.nodes()
        self._index: Dict[Node, int] = {p: i for i, p in enumerate(self._order)}
        # one re-iterable stream shared by every pass, so the cyclic fast
        # path materialises its cycle once, not once per query; also
        # validates horizon/chunk eagerly
        self._source = TraceStream(
            schedule, graph, horizon, chunk=self.chunk, backend=self.backend
        )
        self._stats: Optional[List[_NodeStreamStats]] = None
        self._collisions: Optional[Dict[Tuple[Node, Node], List[int]]] = None
        self._unknown: Optional[List[Tuple[int, Node]]] = None
        self._plan: Optional[_CheckpointPlan] = None
        self._warned_serial = False

    def _stream(self) -> TraceStream:
        return self._source

    # -- the shared summary pass ---------------------------------------------------
    def _block_positions(self, start: int, block: TraceMatrix, row: int) -> List[int]:
        """Ascending *global* appearance holidays of one row within a block."""
        if self.backend == "numpy":
            return (start + _np.flatnonzero(block._matrix[row])).tolist()
        return _bit_positions(block._bits[row], offset=start)

    def _parallel_source(self) -> Optional[ScheduleOrSets]:
        """What a worker process can rebuild blocks from, or None when the
        scan cannot be split.

        Periodic and cyclic schedules are picklable and random-access, so
        workers receive the schedule itself and rebuild any chunk through
        the offset-aware fast paths; raw happy-set sequences — and
        non-cyclic explicit prefixes, which are just a validated list —
        are sliceable, so each worker receives only its block's slice
        instead of ``O(blocks)`` copies of the whole prefix.  Everything
        else — notably :class:`~repro.core.schedule.GeneratorSchedule`,
        whose future depends on its past — must be run forward in one
        process; *checkpointable* generators still parallelise, through
        :meth:`_checkpoint_plan` rather than this method.
        """
        if isinstance(self.schedule, ExplicitSchedule):
            if self.schedule.is_periodic():
                return self.schedule  # one small cycle; workers tile it
            if len(self.schedule) >= self.horizon:
                return self.schedule._sets  # validated frozensets; slice per block
            return None  # too-short prefix: fail serially, as dense would
        if isinstance(self.schedule, PeriodicSchedule):
            return self.schedule
        if not isinstance(self.schedule, Schedule):
            return self.schedule  # raw sequence: workers get their slice
        return None

    def _checkpoint_plan(self) -> Optional[_CheckpointPlan]:
        """The per-chunk checkpoint plan for a checkpointable generator
        schedule, or None when the schedule has no checkpoint support, the
        trace was built with ``checkpoint=False``, or the generator was
        already advanced before this trace could snapshot holiday 0
        (generator state cannot be rewound)."""
        if self._plan is not None:
            return self._plan
        if not self.checkpoint:
            return None
        schedule = self.schedule
        if not (isinstance(schedule, GeneratorSchedule) and schedule.checkpointable):
            return None
        if schedule.frontier() != 0:
            return None
        self._plan = _CheckpointPlan(schedule, self.chunk, self._source.num_chunks())
        return self._plan

    def _parallel_plan(self) -> Optional[Union[ScheduleOrSets, _CheckpointPlan]]:
        """What a parallel pass can fan blocks out from — a direct source
        (:meth:`_parallel_source`), a checkpoint plan, or None when the pass
        must stay serial.  Warns once per trace when ``jobs > 1`` silently
        degrades to a serial scan for lack of checkpoint support."""
        if self.jobs <= 1 or self._source.num_chunks() <= 1:
            return None
        source = self._parallel_source()
        if source is not None:
            return source
        plan = self._checkpoint_plan()
        if plan is not None:
            return plan
        if not self._warned_serial and self.checkpoint:
            self._warned_serial = True
            _LOG.warning(
                "jobs=%d has no effect for %s: the schedule must be generated "
                "forward and does not implement the checkpoint/restore protocol "
                "(GeneratorSchedule checkpoint=/restore=); running the serial "
                "chunk scan instead",
                self.jobs,
                self.schedule.describe() if isinstance(self.schedule, Schedule)
                else type(self.schedule).__name__,
            )
        return None

    def _block_payload(self, source, first_chunk: int, chunk_count: int) -> Tuple:
        """The ``(schedule, graph, horizon, chunk, backend, first, count,
        offset)`` tuple one worker needs to rebuild and scan its block.

        For a :class:`_CheckpointPlan` this advances the parent's generator
        to the block's first boundary and ships the resume handle — called
        in block order from the submission loops, the parent snapshots just
        enough to keep submitting while earlier workers already fold.
        """
        if isinstance(source, _CheckpointPlan):
            source.ensure(first_chunk)
            return (source.handles[first_chunk], self.graph, self.horizon, self.chunk,
                    self.backend, first_chunk, chunk_count, 0)
        if isinstance(source, Schedule):
            return (source, self.graph, self.horizon, self.chunk, self.backend,
                    first_chunk, chunk_count, 0)
        lo = first_chunk * self.chunk
        hi = min(self.horizon, (first_chunk + chunk_count) * self.chunk)
        return (list(source[lo:hi]), self.graph, hi - lo, self.chunk, self.backend,
                0, chunk_count, lo)

    def _serial_blocks(self) -> Iterator[Tuple[int, TraceMatrix]]:
        """One in-order ``(start, block)`` pass over the stream, snapshotting
        per-chunk checkpoints as a side effect when the schedule supports
        them — so a serial first pass leaves the same replay handles behind
        as a parallel one."""
        plan = self._checkpoint_plan()
        stream = self._stream()
        for k in range(self._source.num_chunks()):
            start = k * self.chunk + 1
            width = min(self.chunk, self.horizon - start + 1)
            if (plan is not None and len(plan.handles) == k
                    and plan.schedule.frontier() == k * self.chunk):
                plan.ensure(k)  # frontier sits exactly at the boundary
            yield start, stream.block(start, width)

    def _replay_handles(self) -> Optional[List[GeneratorCheckpoint]]:
        """Complete per-chunk resume handles, or None when unavailable."""
        if self._plan is not None and self._plan.complete:
            return self._plan.handles
        return None

    def _single_block(self, start: int, width: int) -> TraceMatrix:
        """Build the one block covering ``start..start+width-1``, resuming a
        checkpoint when the generator's own history was already evicted."""
        schedule = self.schedule
        if isinstance(schedule, GeneratorSchedule) and schedule.evicted_below >= start:
            handles = self._replay_handles()
            if handles is not None:
                resumed = handles[(start - 1) // self.chunk].resume()
                return TraceMatrix._from_sets(
                    resumed.prefix(width, start=start), self.graph, width, self.backend
                )
        return self._stream().block(start, width)

    def _pass_blocks(self) -> Iterator[Tuple[int, TraceMatrix]]:
        """``(start, block)`` pairs for a dedicated (possibly repeated)
        serial pass: windowed generators whose history was evicted replay
        chunk-by-chunk from the cached checkpoints; everything else
        re-streams directly."""
        schedule = self.schedule
        if isinstance(schedule, GeneratorSchedule) and schedule.evicted_below > 0:
            handles = self._replay_handles()
            if handles is not None:
                for k in range(self._source.num_chunks()):
                    start = k * self.chunk + 1
                    width = min(self.chunk, self.horizon - start + 1)
                    resumed = handles[k].resume()
                    yield start, TraceMatrix._from_sets(
                        resumed.prefix(width, start=start), self.graph, width, self.backend
                    )
                return
        yield from self._serial_blocks()

    def _scan(self) -> None:
        if self._stats is not None:
            return
        source = self._parallel_plan()
        if source is not None:
            self._scan_parallel(source)
            return
        stats = [_NodeStreamStats() for _ in self._order]
        edges = self.graph.edges()
        edge_rows = [(self._index[u], self._index[v]) for u, v in edges]
        collisions: List[List[int]] = [[] for _ in edges]
        unknown: List[Tuple[int, Node]] = []
        for start, block in self._pass_blocks():
            _fold_summary_block(start, block, self.backend, stats, edge_rows, collisions, unknown)
        self._stats = stats
        self._collisions = {edge: collisions[k] for k, edge in enumerate(edges)}
        self._unknown = unknown

    def _scan_parallel(self, source) -> None:
        """The summary pass, fanned out over contiguous blocks of chunks.

        Each worker returns its block's partial per-node stats, per-edge
        collision fragments and unknown pairs; the parent folds them back
        together **in block order** via the associative
        :meth:`_NodeStreamStats.merge`, which reproduces the serial
        left-to-right state exactly.  For a checkpoint plan the submission
        loop itself runs the generator forward (payload building snapshots
        each block's boundary), pipelining the sequential generation with
        the workers' folds; the remaining per-chunk replay handles are
        captured while the pool drains.
        """
        blocks = _chunk_blocks(self._source.num_chunks(), self.jobs * BLOCKS_PER_JOB)
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(blocks))) as pool:
            futures = [
                pool.submit(_summary_block_worker, self._block_payload(source, first, count))
                for first, count in blocks
            ]
            if isinstance(source, _CheckpointPlan):
                source.ensure_all()
            partials = [future.result() for future in futures]
        stats = [_NodeStreamStats() for _ in self._order]
        edges = self.graph.edges()
        collisions: List[List[int]] = [[] for _ in edges]
        unknown: List[Tuple[int, Node]] = []
        for part_stats, part_collisions, part_unknown in partials:
            for acc, part in zip(stats, part_stats):
                acc.merge(part)
            for acc_list, part_list in zip(collisions, part_collisions):
                acc_list.extend(part_list)
            unknown.extend(part_unknown)
        self._stats = stats
        self._collisions = {edge: collisions[k] for k, edge in enumerate(edges)}
        self._unknown = unknown

    @property
    def unknown(self) -> List[Tuple[int, Node]]:
        """Global ``(holiday, node)`` pairs absent from the graph."""
        self._scan()
        return self._unknown

    def _node_stats(self, node: Node) -> _NodeStreamStats:
        self._scan()
        return self._stats[self._index[node]]

    # -- per-node queries (TraceMatrix-compatible) ---------------------------------
    def row_index(self, node: Node) -> int:
        """Row of ``node`` in the chunk matrices (KeyError for unknown nodes)."""
        return self._index[node]

    def count(self, node: Node) -> int:
        """Number of holidays within the horizon at which ``node`` is happy."""
        return self._node_stats(node).count

    def mul(self, node: Node) -> int:
        """Maximum unhappiness length of ``node`` within the horizon."""
        stats = self._node_stats(node)
        if stats.count == 0:
            return self.horizon
        internal = stats.max_diff - 1 if stats.max_diff else 0
        return max(stats.first - 1, self.horizon - stats.last, internal)

    def observed_period(self, node: Node) -> Optional[int]:
        """The constant inter-appearance difference, or None."""
        stats = self._node_stats(node)
        if stats.count < 2 or len(stats.diffs) != 1:
            return None
        return next(iter(stats.diffs))

    def happiness_rate(self, node: Node) -> float:
        """Fraction of observed holidays at which ``node`` was happy."""
        return self._node_stats(node).count / self.horizon

    def distinct_appearance_diffs(self, node: Node) -> List[int]:
        """Sorted distinct inter-appearance differences of ``node``."""
        return sorted(self._node_stats(node).diffs)

    def _row_positions_parallel(self, rows: Sequence[int]) -> Optional[List[List[int]]]:
        """Per-row ascending global appearance holidays via a fanned-out
        block pass, or None when the pass must stay serial.  Block results
        concatenate in block order, so the lists are identical to a serial
        pass's (the per-appearance determinism contract)."""
        source = self._parallel_plan()
        if source is None:
            return None
        blocks = _chunk_blocks(self._source.num_chunks(), self.jobs * BLOCKS_PER_JOB)
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(blocks))) as pool:
            futures = [
                pool.submit(
                    _appearance_block_worker,
                    self._block_payload(source, first, count) + (list(rows),),
                )
                for first, count in blocks
            ]
            if isinstance(source, _CheckpointPlan):
                source.ensure_all()
            partials = [future.result() for future in futures]
        out: List[List[int]] = [[] for _ in rows]
        for part in partials:
            for slot, positions in enumerate(part):
                out[slot].extend(positions)
        return out

    def appearances(self, node: Node) -> List[int]:
        """Sorted 1-indexed holidays at which ``node`` is happy (dedicated
        streaming pass, fanned out over chunk blocks when ``jobs > 1``; the
        result itself is O(appearances))."""
        row = self._index[node]
        parallel = self._row_positions_parallel([row])
        if parallel is not None:
            return parallel[0]
        out: List[int] = []
        for start, block in self._pass_blocks():
            out.extend(self._block_positions(start, block, row))
        return out

    def appearance_diffs(self, node: Node) -> List[int]:
        """Differences between consecutive appearances (empty if < 2)."""
        times = self.appearances(node)
        return [b - a for a, b in zip(times, times[1:])]

    def gaps(self, node: Node) -> List[int]:
        """Unhappiness interval lengths, same semantics as
        :meth:`TraceMatrix.gaps`."""
        times = self.appearances(node)
        if not times:
            return [self.horizon]
        gaps = [times[0] - 1]
        gaps.extend(b - a - 1 for a, b in zip(times, times[1:]))
        gaps.append(self.horizon - times[-1])
        return gaps

    # -- bulk queries --------------------------------------------------------------
    def muls(self) -> Dict[Node, int]:
        """``{node: mul(node)}`` for every node, in graph order."""
        return {p: self.mul(p) for p in self._order}

    def observed_periods(self) -> Dict[Node, Optional[int]]:
        """``{node: observed period or None}`` for every node."""
        return {p: self.observed_period(p) for p in self._order}

    def happiness_rates(self) -> Dict[Node, float]:
        """``{node: happiness rate}`` for every node."""
        return {p: self.happiness_rate(p) for p in self._order}

    def all_gaps(self) -> Dict[Node, List[int]]:
        """``{node: gap list}`` for every node, in one streaming pass
        (fanned out over chunk blocks when ``jobs > 1``)."""
        rows = list(range(len(self._order)))
        positions = self._row_positions_parallel(rows)
        if positions is not None:
            out: Dict[Node, List[int]] = {}
            for i, p in enumerate(self._order):
                times = positions[i]
                if not times:
                    out[p] = [self.horizon]
                    continue
                node_gaps = [times[0] - 1]
                node_gaps.extend(b - a - 1 for a, b in zip(times, times[1:]))
                node_gaps.append(self.horizon - times[-1])
                out[p] = node_gaps
            return out
        gaps: List[List[int]] = [[] for _ in self._order]
        prev = [0] * len(self._order)
        for start, block in self._pass_blocks():
            for i in range(len(self._order)):
                acc, before = gaps[i], prev[i]
                for t in self._block_positions(start, block, i):
                    acc.append(t - before - 1)
                    before = t
                prev[i] = before
        for i in range(len(self._order)):
            gaps[i].append(self.horizon - prev[i])
        return {p: gaps[i] for i, p in enumerate(self._order)}

    # -- column / edge queries -----------------------------------------------------
    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        """The recorded happy set at ``holiday`` — builds only the one chunk
        containing it."""
        if not (1 <= holiday <= self.horizon):
            raise ValueError(f"holiday {holiday} outside recorded horizon 1..{self.horizon}")
        start = holiday - (holiday - 1) % self.chunk
        width = min(self.chunk, self.horizon - start + 1)
        block = self._single_block(start, width)
        return block.happy_set(holiday - start + 1)

    def edge_collisions(self, u: Node, v: Node) -> List[int]:
        """Holidays at which ``u`` and ``v`` are simultaneously happy.

        Pairs that are edges of the trace's own graph come from the cached
        summary pass; any other pair gets a dedicated per-chunk row-AND scan.
        """
        self._scan()
        for key in ((u, v), (v, u)):
            if key in self._collisions:
                return list(self._collisions[key])
        i, j = self._index[u], self._index[v]
        out: List[int] = []
        for start, block in self._pass_blocks():
            if self.backend == "numpy":
                both = block._matrix[i] & block._matrix[j]
                if both.any():
                    out.extend((start + _np.flatnonzero(both)).tolist())
            else:
                both = block._bits[i] & block._bits[j]
                if both:
                    out.extend(_bit_positions(both, offset=start))
        return out

    def conflicting_holidays(self) -> Dict[int, List[Tuple[Node, Node]]]:
        """``{holiday: [(u, v), ...]}`` over all graph edges with collisions."""
        out: Dict[int, List[Tuple[Node, Node]]] = {}
        for u, v in self.graph.edges():
            for t in self.edge_collisions(u, v):
                out.setdefault(t, []).append((u, v))
        return out

    def legality_scan(
        self, graph: ConflictGraph, fail_fast: bool = False
    ) -> Tuple[Dict[int, List[Node]], Dict[int, List[Tuple[Node, Node]]]]:
        """Per-chunk legality evidence against ``graph``'s edges.

        Returns ``(unknown_by_holiday, collisions_by_holiday)`` with global
        holidays.  With ``fail_fast`` the stream stops after the first chunk
        containing any violation — later chunks are never built, which is
        the early-exit the streaming validator advertises.  Without
        ``fail_fast``, edges matching the trace's own graph reuse the cached
        summary pass instead of streaming again.  With ``jobs > 1`` the scan
        fans chunk blocks out to worker processes (checkpointable generator
        schedules included, via their resume handles); under ``fail_fast``
        the parent merges block results in order and cancels every
        outstanding block past the first violating chunk.
        """
        edges = graph.edges()
        if not fail_fast and edges == self.graph.edges():
            self._scan()
            unknown_by_holiday: Dict[int, List[Node]] = {}
            for t, p in self._unknown:
                unknown_by_holiday.setdefault(t, []).append(p)
            collisions: Dict[int, List[Tuple[Node, Node]]] = {}
            for u, v in edges:
                for t in self._collisions[(u, v)]:
                    collisions.setdefault(t, []).append((u, v))
            return unknown_by_holiday, collisions
        edge_rows = [(self._index[u], self._index[v]) for u, v in edges]
        source = self._parallel_plan()
        if source is not None:
            return self._legality_scan_parallel(source, edges, edge_rows, fail_fast)
        unknown_by_holiday = {}
        collisions = {}
        for start, block in self._pass_blocks():
            _fold_legality_block(
                start, block, self.backend, edges, edge_rows, unknown_by_holiday, collisions
            )
            if fail_fast and (unknown_by_holiday or collisions):
                break
        return unknown_by_holiday, collisions

    def _legality_scan_parallel(
        self,
        source,
        edges: Sequence[Tuple[Node, Node]],
        edge_rows: Sequence[Tuple[int, int]],
        fail_fast: bool,
    ) -> Tuple[Dict[int, List[Node]], Dict[int, List[Tuple[Node, Node]]]]:
        """Per-chunk legality evidence, fanned out over chunk blocks.

        Block results are merged strictly in block order so the per-holiday
        dictionaries come out identical to a serial scan.  Under
        ``fail_fast`` each worker already truncates at its block's first
        violating chunk, and the parent stops merging (and cancels all
        outstanding futures) at the first block that reports a violation —
        exactly the first violating chunk overall, since earlier blocks are
        merged first and came back clean.
        """
        blocks = _chunk_blocks(self._source.num_chunks(), self.jobs * BLOCKS_PER_JOB)
        unknown_by_holiday: Dict[int, List[Node]] = {}
        collisions: Dict[int, List[Tuple[Node, Node]]] = {}
        with ProcessPoolExecutor(max_workers=min(self.jobs, len(blocks))) as pool:
            futures = [
                pool.submit(
                    _legality_block_worker,
                    self._block_payload(source, first, count)
                    + (list(edges), list(edge_rows), fail_fast),
                )
                for first, count in blocks
            ]
            if isinstance(source, _CheckpointPlan):
                source.ensure_all()
            try:
                for future in futures:
                    block_unknown, block_collisions = future.result()
                    for t, nodes in block_unknown.items():
                        unknown_by_holiday.setdefault(t, []).extend(nodes)
                    for t, pairs in block_collisions.items():
                        collisions.setdefault(t, []).extend(pairs)
                    if fail_fast and (unknown_by_holiday or collisions):
                        break
            finally:
                for future in futures:  # no-op on completed futures
                    future.cancel()
        return unknown_by_holiday, collisions


#: sentinel for "no inter-appearance difference observed" in the batched
#: min-diff array (rows with < 2 appearances); guarded by count checks, so
#: it never leaks into a query result.
_NO_DIFF = 1 << 62


class TraceBatch:
    """``S`` schedules over one graph and horizon, evaluated in one pass.

    Stacks the occupancy traces of ``S`` *compatible* schedules — same
    :class:`~repro.core.problem.ConflictGraph`, same horizon, same resolved
    backend — into a single ``S × n × horizon`` boolean tensor (numpy) or
    ``S`` lists of bitmask rows (pure Python), and answers every summary
    query of the :class:`TraceMatrix` API for *all* members from one
    stacked :meth:`scan`:

    * per-node gap/run-length statistics (``mul``, observed period,
      distinct diffs, happiness rate) from a single ``nonzero``/``diff``/
      ``reduceat`` sweep over the flattened ``S·n`` row block (numpy) or
      one bit walk per row (bitmask);
    * per-edge legality evidence from one adjacency-masked AND per graph
      edge covering all members at once.

    Construction broadcasts the existing fast paths across the schedule
    axis: every periodic row in the whole batch is grouped by its period so
    each distinct period is expanded once (numpy), and bitmask patterns are
    cached by ``(period, phase)`` across all members.  Non-periodic members
    fall back to their ordinary :meth:`TraceMatrix.from_schedule` build.

    ``horizon_mode="stream"`` (or ``"auto"`` above
    :data:`AUTO_STREAM_BYTES`) degrades gracefully: member chunks are
    folded column-block by column-block through the same associative
    accumulators as :class:`StreamedTrace`, so resident memory is
    ``O(S × n × chunk)`` — the batch never materialises ``S`` dense
    matrices it could not afford per-cell.

    :meth:`member` returns a view exposing the :class:`TraceMatrix` query
    API for one schedule, answered from the shared scan; views satisfy the
    shared-trace contract of :func:`repro.core.metrics.build_trace`
    (matching graph and horizon), which is how the experiment engine runs
    the unmodified metric suite and validator over each member.
    Differential tests (``tests/core/test_batch.py``) assert every member
    query equals its per-cell counterpart on both backends.
    """

    def __init__(
        self,
        schedules: Sequence[ScheduleOrSets],
        graph: ConflictGraph,
        horizon: int,
        backend: str = "auto",
        horizon_mode: str = "auto",
        chunk: Optional[int] = None,
    ) -> None:
        if horizon < 1:
            raise ValueError(f"horizon must be >= 1, got {horizon!r}")
        self.schedules: List[ScheduleOrSets] = list(schedules)
        if not self.schedules:
            raise ValueError("TraceBatch needs at least one schedule")
        self.graph = graph
        self.horizon = horizon
        self.backend = resolve_backend(backend)
        self.chunk = DEFAULT_CHUNK if chunk is None else int(chunk)
        if self.chunk < 1:
            raise ValueError(f"chunk width must be >= 1, got {chunk!r}")
        #: the representation every member view reports as its ``mode`` —
        #: resolved exactly like a per-cell trace of the same shape, so a
        #: batched record's ``horizon_mode`` stamp matches per-cell runs.
        self.member_mode = resolve_horizon_mode(
            horizon_mode, graph.num_nodes(), horizon, self.backend
        )
        self._order: List[Node] = graph.nodes()
        self._index: Dict[Node, int] = {p: i for i, p in enumerate(self._order)}
        self._unknown: List[List[Tuple[int, Node]]] = [[] for _ in self.schedules]
        self._tensor = None  # numpy (S, n, horizon) bool tensor (dense numpy)
        self._bits: Optional[List[List[int]]] = None  # per-member rows (dense bitmask)
        # per-(member, node) summary state for the bitmask and stream arms
        self._stats: Optional[List[List[_NodeStreamStats]]] = None
        # flattened per-row summary arrays for the dense numpy arm
        self._counts = self._first = self._last = None
        self._dmax = self._dmin = self._muls = None
        self._cols = self._seg_start = self._seg_end = None
        # graph edge -> one collision-holiday list per member
        self._collisions: Optional[Dict[Tuple[Node, Node], List[List[int]]]] = None
        self._scanned = False
        if self.member_mode == "dense":
            self._build_dense()

    def __len__(self) -> int:
        return len(self.schedules)

    def member(self, s: int) -> "_BatchMemberView":
        """The :class:`TraceMatrix`-compatible view of member ``s``."""
        if not (0 <= s < len(self.schedules)):
            raise IndexError(f"member {s} outside batch of {len(self.schedules)}")
        return _BatchMemberView(self, s)

    def members(self) -> List["_BatchMemberView"]:
        """Views of every member, in schedule order."""
        return [self.member(s) for s in range(len(self.schedules))]

    # -- stacked construction ------------------------------------------------------
    def _periodic_eligible(self, schedule: ScheduleOrSets) -> bool:
        # same test as TraceMatrix.from_schedule: the table must cover
        # exactly the observed nodes for the direct expansion to be valid.
        return isinstance(schedule, PeriodicSchedule) and set(schedule.assignments) == set(
            self._order
        )

    def _build_dense(self) -> None:
        n, horizon = len(self._order), self.horizon
        if self.backend == "numpy":
            tensor = _np.zeros((len(self.schedules), n, horizon), dtype=_np.bool_)
            # C-contiguous reshape: flat row s·n + i aliases tensor[s, i].
            flat = tensor.reshape(len(self.schedules) * n, horizon)
            by_period: Dict[int, Tuple[List[int], List[int]]] = {}
            for s, schedule in enumerate(self.schedules):
                if self._periodic_eligible(schedule):
                    for i, p in enumerate(self._order):
                        slot = schedule.assignments[p]
                        rows, phases = by_period.setdefault(slot.period, ([], []))
                        rows.append(s * n + i)
                        phases.append(slot.phase)
                else:
                    member = TraceMatrix.from_schedule(
                        schedule, self.graph, horizon, backend="numpy"
                    )
                    tensor[s] = member._matrix
                    self._unknown[s] = member.unknown
            if by_period:
                # one arange % τ per distinct period across the WHOLE batch —
                # the broadcast form of TraceMatrix._from_periodic.
                holidays = _np.arange(1, horizon + 1, dtype=_np.int64)
                for period, (rows, phases) in by_period.items():
                    mod = holidays % period
                    row_idx = _np.asarray(rows, dtype=_np.intp)
                    phase_arr = _np.asarray(phases, dtype=_np.int64)
                    flat[row_idx] = mod[_np.newaxis, :] == phase_arr[:, _np.newaxis]
            self._tensor = tensor
            return
        pattern_cache: Dict[Tuple[int, int], int] = {}
        bits: List[List[int]] = []
        for s, schedule in enumerate(self.schedules):
            if self._periodic_eligible(schedule):
                row_bits: List[int] = []
                for p in self._order:
                    slot = schedule.assignments[p]
                    key = (slot.period, slot.phase)
                    if key not in pattern_cache:
                        pattern_cache[key] = _periodic_bitmask_window(
                            slot.period, slot.phase, 1, horizon
                        )
                    row_bits.append(pattern_cache[key])
                bits.append(row_bits)
            else:
                member = TraceMatrix.from_schedule(
                    schedule, self.graph, horizon, backend="bitmask"
                )
                bits.append(member._bits)
                self._unknown[s] = member.unknown
        self._bits = bits

    # -- the one stacked scan ------------------------------------------------------
    def scan(self) -> None:
        """Run the stacked summary pass once (idempotent).

        Triggered lazily by the first query; callers that want the shared
        cost timed separately (the experiment engine) invoke it eagerly.
        """
        if self._scanned:
            return
        if self.member_mode == "stream":
            self._scan_stream()
        elif self.backend == "numpy":
            self._scan_dense_numpy()
        else:
            self._scan_dense_bitmask()
        self._scanned = True

    def _scan_dense_numpy(self) -> None:
        """One vectorized sweep over the flattened ``S·n`` row block.

        ``nonzero`` on the flat matrix yields every appearance of every
        member grouped by row in ascending column order; per-row first/last
        come from segment boundaries and the max/min inter-appearance
        differences from ``diff`` + ``maximum/minimum.reduceat`` with
        cross-row positions neutralised — the batched equivalent of one
        ``flatnonzero``/``diff`` pass per row.
        """
        total = len(self.schedules) * len(self._order)
        flat = self._tensor.reshape(total, self.horizon)
        # one flat nonzero pass instead of 2-D ``nonzero`` — the row index
        # array it would compute is recoverable from one divmod, and the
        # per-row counts fall out of a bincount over it.
        pos = _np.flatnonzero(flat.ravel())
        rows_idx, cols = _np.divmod(pos, self.horizon)
        counts = _np.bincount(rows_idx, minlength=total).astype(_np.int64, copy=False)
        cols = cols.astype(_np.int64, copy=False)
        first = _np.zeros(total, dtype=_np.int64)
        last = _np.zeros(total, dtype=_np.int64)
        dmax = _np.zeros(total, dtype=_np.int64)
        dmin = _np.full(total, _NO_DIFF, dtype=_np.int64)
        seg_start = _np.zeros(total, dtype=_np.int64)
        seg_end = _np.zeros(total, dtype=_np.int64)
        nonempty = _np.flatnonzero(counts)
        if nonempty.size:
            seg_ends = _np.cumsum(counts[nonempty])
            seg_starts = _np.concatenate(([0], seg_ends[:-1]))
            first[nonempty] = cols[seg_starts]
            last[nonempty] = cols[seg_ends - 1]
            seg_start[nonempty] = seg_starts
            seg_end[nonempty] = seg_ends
            if cols.size > 1:
                diffs = _np.diff(cols)
                pad_max = _np.concatenate((diffs, [0]))
                pad_min = _np.concatenate((diffs, [_NO_DIFF]))
                # positions crossing from one row's segment into the next
                # carry meaningless diffs — neutralise them for both folds.
                boundary = seg_ends[:-1] - 1
                pad_max[boundary] = 0
                pad_min[boundary] = _NO_DIFF
                dmax[nonempty] = _np.maximum.reduceat(pad_max, seg_starts)
                dmin[nonempty] = _np.minimum.reduceat(pad_min, seg_starts)
        self._counts, self._first, self._last = counts, first, last
        self._dmax, self._dmin = dmax, dmin
        self._cols, self._seg_start, self._seg_end = cols, seg_start, seg_end
        # mul for every flat row in one vectorized formula: the per-query
        # hot path (metrics + bound certification call it per node per
        # member) collapses to an array lookup.
        muls = _np.maximum(first, self.horizon - 1 - last)
        muls = _np.maximum(muls, _np.where(counts > 1, dmax - 1, 0))
        muls[counts == 0] = self.horizon
        self._muls = muls
        collisions: Dict[Tuple[Node, Node], List[List[int]]] = {}
        for u, v in self.graph.edges():
            i, j = self._index[u], self._index[v]
            # one AND over the (S, horizon) slice pair covers every member.
            both = self._tensor[:, i, :] & self._tensor[:, j, :]
            per_member: List[List[int]] = [[] for _ in self.schedules]
            if both.any():
                hit_members, hit_cols = _np.nonzero(both)
                for s, t in zip(hit_members.tolist(), hit_cols.tolist()):
                    per_member[s].append(t + 1)
            collisions[(u, v)] = per_member
        self._collisions = collisions

    def _scan_dense_bitmask(self) -> None:
        stats: List[List[_NodeStreamStats]] = []
        for member_bits in self._bits:
            member_stats = []
            for row in member_bits:
                node_stats = _NodeStreamStats()
                node_stats.absorb(_bit_positions(row, offset=1))
                member_stats.append(node_stats)
            stats.append(member_stats)
        self._stats = stats
        collisions: Dict[Tuple[Node, Node], List[List[int]]] = {}
        for u, v in self.graph.edges():
            i, j = self._index[u], self._index[v]
            per_member = []
            for member_bits in self._bits:
                both = member_bits[i] & member_bits[j]
                per_member.append(_bit_positions(both, offset=1) if both else [])
            collisions[(u, v)] = per_member
        self._collisions = collisions

    def _scan_stream(self) -> None:
        """Chunk-major stacked scan: every member's block for one column
        window is built and folded before moving to the next window, so at
        most ``S`` blocks of ``n × chunk`` are live at once."""
        streams = [
            TraceStream(schedule, self.graph, self.horizon, chunk=self.chunk, backend=self.backend)
            for schedule in self.schedules
        ]
        edges = self.graph.edges()
        edge_rows = [(self._index[u], self._index[v]) for u, v in edges]
        stats = [[_NodeStreamStats() for _ in self._order] for _ in self.schedules]
        collision_lists: List[List[List[int]]] = [
            [[] for _ in edges] for _ in self.schedules
        ]
        start = 1
        while start <= self.horizon:
            width = min(self.chunk, self.horizon - start + 1)
            for s, stream in enumerate(streams):
                block = stream.block(start, width)
                _fold_summary_block(
                    start, block, self.backend, stats[s], edge_rows,
                    collision_lists[s], self._unknown[s],
                )
            start += width
        self._stats = stats
        self._collisions = {
            edge: [collision_lists[s][k] for s in range(len(self.schedules))]
            for k, edge in enumerate(edges)
        }


class _BatchMemberView:
    """One member's :class:`TraceMatrix`-compatible window into a
    :class:`TraceBatch`.

    Summary queries are answered from the batch's shared scan; the rare
    per-appearance queries (``appearances``, ``gaps``, ``happy_set``) fall
    through to a lazily materialised ordinary trace for this member — a
    zero-copy row-block view of the stacked tensor in dense mode, a fresh
    :class:`StreamedTrace` in stream mode.  ``mode`` mirrors what a
    per-cell trace of the same shape would report.
    """

    def __init__(self, batch: TraceBatch, member: int) -> None:
        self._batch = batch
        self._member = member
        self.graph = batch.graph
        self.horizon = batch.horizon
        self.backend = batch.backend
        self.mode = batch.member_mode
        self._order = batch._order
        self._index = batch._index
        self._trace = None  # lazily materialised per-member trace

    @property
    def unknown(self) -> List[Tuple[int, Node]]:
        """Global ``(holiday, node)`` pairs absent from the graph."""
        if self._batch.member_mode == "stream":
            self._batch.scan()  # stream mode discovers unknowns during the fold
        return self._batch._unknown[self._member]

    def row_index(self, node: Node) -> int:
        """Row of ``node`` in the member's matrix (KeyError if unknown)."""
        return self._index[node]

    # -- shared-scan summary queries -----------------------------------------------
    def _flat_row(self, node: Node) -> int:
        return self._member * len(self._order) + self._index[node]

    def _vector_scan(self) -> bool:
        """True when the dense-numpy flattened arrays answer this member."""
        batch = self._batch
        return batch.member_mode == "dense" and batch.backend == "numpy"

    def _stats(self, node: Node) -> _NodeStreamStats:
        batch = self._batch
        batch.scan()
        return batch._stats[self._member][self._index[node]]

    def count(self, node: Node) -> int:
        """Number of holidays within the horizon at which ``node`` is happy."""
        if self._vector_scan():
            self._batch.scan()
            return int(self._batch._counts[self._flat_row(node)])
        return self._stats(node).count

    def mul(self, node: Node) -> int:
        """Maximum unhappiness length of ``node`` within the horizon."""
        batch = self._batch
        if self._vector_scan():
            batch.scan()
            return int(batch._muls[self._flat_row(node)])
        stats = self._stats(node)
        if stats.count == 0:
            return self.horizon
        internal = stats.max_diff - 1 if stats.max_diff else 0
        return max(stats.first - 1, self.horizon - stats.last, internal)

    def observed_period(self, node: Node) -> Optional[int]:
        """The constant inter-appearance difference, or None."""
        batch = self._batch
        if self._vector_scan():
            batch.scan()
            row = self._flat_row(node)
            if int(batch._counts[row]) < 2:
                return None
            dmax = int(batch._dmax[row])
            return dmax if dmax == int(batch._dmin[row]) else None
        stats = self._stats(node)
        if stats.count < 2 or len(stats.diffs) != 1:
            return None
        return next(iter(stats.diffs))

    def distinct_appearance_diffs(self, node: Node) -> List[int]:
        """Sorted distinct inter-appearance differences of ``node``."""
        batch = self._batch
        if self._vector_scan():
            batch.scan()
            row = self._flat_row(node)
            if int(batch._counts[row]) < 2:
                return []
            dmax = int(batch._dmax[row])
            if dmax == int(batch._dmin[row]):  # constant — the periodic case
                return [dmax]
            segment = batch._cols[batch._seg_start[row]:batch._seg_end[row]]
            return _np.unique(_np.diff(segment)).tolist()
        return sorted(self._stats(node).diffs)

    def happiness_rate(self, node: Node) -> float:
        """Fraction of observed holidays at which ``node`` was happy."""
        return self.count(node) / self.horizon

    def _member_slice(self, array):
        """This member's contiguous block of a flat per-row summary array."""
        lo = self._member * len(self._order)
        return array[lo:lo + len(self._order)]

    # -- bulk queries --------------------------------------------------------------
    def muls(self) -> Dict[Node, int]:
        """``{node: mul(node)}`` for every node, in graph order."""
        if self._vector_scan():
            self._batch.scan()
            return dict(zip(self._order, self._member_slice(self._batch._muls).tolist()))
        return {p: self.mul(p) for p in self._order}

    def observed_periods(self) -> Dict[Node, Optional[int]]:
        """``{node: observed period or None}`` for every node."""
        if self._vector_scan():
            batch = self._batch
            batch.scan()
            counts = self._member_slice(batch._counts)
            dmax = self._member_slice(batch._dmax)
            periodic = (counts >= 2) & (dmax == self._member_slice(batch._dmin))
            return {
                p: int(dmax[i]) if periodic[i] else None
                for i, p in enumerate(self._order)
            }
        return {p: self.observed_period(p) for p in self._order}

    def happiness_rates(self) -> Dict[Node, float]:
        """``{node: happiness rate}`` for every node."""
        if self._vector_scan():
            self._batch.scan()
            counts = self._member_slice(self._batch._counts).tolist()
            return {p: c / self.horizon for p, c in zip(self._order, counts)}
        return {p: self.happiness_rate(p) for p in self._order}

    def appearance_diffs(self, node: Node) -> List[int]:
        """Differences between consecutive appearances (empty if < 2)."""
        times = self.appearances(node)
        return [b - a for a, b in zip(times, times[1:])]

    # -- column / edge queries -----------------------------------------------------
    def edge_collisions(self, u: Node, v: Node) -> List[int]:
        """Holidays at which ``u`` and ``v`` are simultaneously happy.

        Graph edges come from the batch's shared legality pass; any other
        pair falls through to the materialised member trace.
        """
        batch = self._batch
        batch.scan()
        for key in ((u, v), (v, u)):
            per_member = batch._collisions.get(key)
            if per_member is not None:
                return list(per_member[self._member])
        return self._materialized().edge_collisions(u, v)

    def conflicting_holidays(self) -> Dict[int, List[Tuple[Node, Node]]]:
        """``{holiday: [(u, v), ...]}`` over all graph edges with collisions."""
        out: Dict[int, List[Tuple[Node, Node]]] = {}
        for u, v in self.graph.edges():
            for t in self.edge_collisions(u, v):
                out.setdefault(t, []).append((u, v))
        return out

    # -- per-appearance queries (delegated) ----------------------------------------
    def _materialized(self):
        """This member as an ordinary trace (zero-copy in dense mode)."""
        if self._trace is None:
            batch, s = self._batch, self._member
            if batch.member_mode == "stream":
                self._trace = StreamedTrace(
                    batch.schedules[s], batch.graph, batch.horizon,
                    backend=batch.backend, chunk=batch.chunk,
                )
            elif batch.backend == "numpy":
                self._trace = TraceMatrix(
                    batch.graph, batch.horizon, "numpy",
                    rows_numpy=batch._tensor[s], unknown=list(batch._unknown[s]),
                )
            else:
                self._trace = TraceMatrix(
                    batch.graph, batch.horizon, "bitmask",
                    rows_bitmask=batch._bits[s], unknown=list(batch._unknown[s]),
                )
        return self._trace

    def appearances(self, node: Node) -> List[int]:
        """Sorted 1-indexed holidays at which ``node`` is happy."""
        return self._materialized().appearances(node)

    def gaps(self, node: Node) -> List[int]:
        """Unhappiness interval lengths (see :meth:`TraceMatrix.gaps`)."""
        return self._materialized().gaps(node)

    def all_gaps(self) -> Dict[Node, List[int]]:
        """``{node: gap list}`` for every node."""
        return self._materialized().all_gaps()

    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        """The recorded happy set at ``holiday`` (known nodes only)."""
        return self._materialized().happy_set(holiday)


def _scatter_columns(matrix, columns, index, on_unknown) -> None:
    """Fill ``matrix[row_of(p), col] = True`` for every ``(col, happy_set)``.

    Memberships are translated to row indices with a C-speed ``map`` over
    the index lookup; the rare column containing a node missing from the
    index rolls back its partial extend and is redone element-wise, routing
    missing nodes to ``on_unknown(col_key, node)``.  Marks are applied with
    one vectorized scatter instead of one scalar store per appearance.
    """
    lookup = index.__getitem__
    rows: List[int] = []
    cols: List[int] = []
    for key, happy in columns:
        mark = len(rows)
        try:
            rows.extend(map(lookup, happy))
        except KeyError:
            del rows[mark:]  # drop the partial extend, redo element-wise
            for p in happy:
                i = index.get(p)
                if i is None:
                    on_unknown(key, p)
                else:
                    rows.append(i)
        cols.extend(repeat(key, len(rows) - mark))
    if rows:
        matrix[_np.asarray(rows, dtype=_np.intp), _np.asarray(cols, dtype=_np.intp)] = True


# -- bit-twiddling helpers (pure-Python backend) ------------------------------------

try:
    _popcount = int.bit_count  # Python 3.10+
except AttributeError:  # pragma: no cover - 3.9 fallback
    def _popcount(x: int) -> int:
        return bin(x).count("1")


def _bit_positions(mask: int, offset: int = 0) -> List[int]:
    """Positions of set bits in ascending order, each shifted by ``offset``.

    Scans byte by byte over a single ``to_bytes`` export: peeling bits off
    the big int directly (``mask &= mask - 1``) re-touches every word of the
    integer per bit, which is quadratic in the horizon and visibly hangs at
    horizons ≥ 10⁵.
    """
    if mask == 0:
        return []
    data = mask.to_bytes((mask.bit_length() + 7) // 8, "little")
    out: List[int] = []
    for byte_index, byte in enumerate(data):
        base = byte_index * 8 + offset
        while byte:
            low = byte & -byte
            out.append(base + low.bit_length() - 1)
            byte ^= low
    return out


def _periodic_bitmask_window(period: int, phase: int, start: int, width: int) -> int:
    """Bitmask with bit ``t - start`` set for every holiday ``start <= t <
    start + width`` with ``t % period == phase`` — built by doubling so the
    cost is ``O(log(width/period))`` big-int operations, not one per
    appearance.  ``start=1`` is the dense full-horizon case; other starts are
    the streaming chunks."""
    first = start + ((phase - start) % period)
    last = start + width - 1
    if first > last:
        return 0
    reps = (last - first) // period + 1
    return _repeat_bitmask(1, period, reps) << (first - start)


def _repeat_bitmask(pattern: int, width: int, reps: int) -> int:
    """Concatenate ``reps`` copies of a ``width``-bit pattern (doubling fill)."""
    if reps <= 0 or pattern == 0:
        return 0
    mask = pattern
    have = 1
    while have < reps:
        take = min(have, reps - have)
        mask |= mask << (take * width)
        have += take
    return mask

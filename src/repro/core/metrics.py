"""Schedule quality metrics.

The paper's objective (Definition 2.2) is the **maximum unhappiness length**
``mul(p)``: the length of the longest interval of consecutive holidays in
which parent ``p`` is never happy.  A schedule is *good* when ``mul(p)`` is
bounded by a local function of ``p`` (its degree or color) for every node.

This module computes ``mul`` over finite horizons, detects empirical
periods, and provides the fairness / throughput statistics used by the
comparison benchmark (E5) and the first-come-first-grab study (E10).

All functions accept either a :class:`~repro.core.schedule.Schedule` or a
pre-materialised sequence of happy sets, so metrics can also be applied to
traces produced outside this package.

Two evaluation engines back every metric (see :mod:`repro.core.trace` for
the architecture notes):

* ``backend="sets"`` — the historical reference path: one ``frozenset`` per
  holiday, walked node by node through :class:`HappinessTrace`.  Exact but
  O(n·horizon) Python-object churn; kept as ground truth for differential
  testing.
* ``backend="auto"`` / ``"numpy"`` / ``"bitmask"`` — the bit-parallel
  :class:`~repro.core.trace.TraceMatrix` engine: the occupancy matrix is
  built once (vectorized for periodic schedules) and every metric becomes a
  run-length-encoding query over dense rows.  ``"auto"`` picks numpy when it
  is installed and the pure-Python bitmask otherwise.

Execution knobs — backend, horizon representation (``dense`` one n × horizon
matrix vs ``stream``ed fixed-width chunks at ``O(n × chunk)`` memory), chunk
width and streamed-scan worker count — travel together on one
:class:`~repro.core.config.EngineConfig` accepted by every entry point as
``config=``.  Every entry point also accepts a pre-built ``trace=`` so a
caller (e.g. :class:`repro.api.Session` or the experiment runner) can share
a single matrix between metrics and validation.

The historical per-call keywords (``backend=``, ``mode=``, ``chunk=``,
``jobs=``) survive as a deprecated back-compat shim: passing any of them
emits one :class:`DeprecationWarning` and translates them into a config via
:func:`repro.core.config.coerce_config` — results are identical either way.
Both horizon representations produce exactly equal metrics (asserted by
``tests/core/test_stream.py``).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import Dict, FrozenSet, Iterable, List, Mapping, Optional, Sequence, Union

from repro.core.config import EngineConfig, coerce_config
from repro.core.problem import ConflictGraph, Node
from repro.core.schedule import Schedule
from repro.core.trace import StreamedTrace, TraceMatrix, materialize_prefix

__all__ = [
    "HappinessTrace",
    "build_trace",
    "materialize",
    "max_unhappiness_lengths",
    "unhappiness_gaps",
    "observed_periods",
    "happiness_rates",
    "normalized_gaps",
    "jain_fairness_index",
    "ScheduleReport",
    "evaluate_schedule",
]

ScheduleLike = Union[Schedule, Sequence[Iterable[Node]]]

#: what the trace-engine entry points accept and return: the dense matrix or
#: its streaming counterpart — they expose the same query API.  The
#: ``trace=`` parameters additionally accept any duck-typed equivalent, in
#: particular the member views of a :class:`~repro.core.trace.TraceBatch`,
#: which is how the experiment engine runs this module unchanged over a
#: stacked cell-batch.
TraceLike = Union[TraceMatrix, StreamedTrace]


def build_trace(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> Optional[TraceLike]:
    """Resolve the evaluation engine for one metric call.

    Returns a :class:`~repro.core.trace.TraceMatrix` or
    :class:`~repro.core.trace.StreamedTrace` (the given one when the caller
    already built it, a fresh one otherwise), or ``None`` when
    ``config.backend == "sets"`` selects the frozenset reference path.
    ``config`` carries the representation choice (``horizon_mode`` resolved
    by estimated memory when ``"auto"``), the streaming chunk width and the
    streamed-scan worker count — the latter two are ignored when the
    resolved representation is dense.  The positional ``backend``/``mode``/
    ``chunk``/``jobs`` keywords are the deprecated pre-config spelling.
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="build_trace",
    )
    engine = config.resolve(graph.num_nodes(), horizon)
    if trace is not None:
        if not engine.uses_matrix:
            raise ValueError(
                "backend='sets' selects the frozenset reference engine and cannot "
                "use a prebuilt trace; omit trace="
            )
        if trace.horizon != horizon:
            raise ValueError(
                f"shared trace covers horizon {trace.horizon}, requested {horizon}"
            )
        if trace.graph is not graph and trace.graph.nodes() != graph.nodes():
            raise ValueError(
                f"shared trace was built on graph {trace.graph.name!r} whose nodes "
                f"differ from {graph.name!r}"
            )
        return trace
    if not engine.uses_matrix:
        return None
    if engine.mode == "stream":
        return StreamedTrace(
            schedule, graph, horizon,
            backend=engine.backend, chunk=engine.chunk, jobs=engine.stream_jobs,
            checkpoint=engine.checkpoint,
        )
    return TraceMatrix.from_schedule(schedule, graph, horizon, backend=engine.backend)


def materialize(schedule: ScheduleLike, graph: ConflictGraph, horizon: int) -> List[FrozenSet[Node]]:
    """Return the first ``horizon`` happy sets of ``schedule`` as frozensets."""
    if horizon < 1:
        raise ValueError(f"horizon must be >= 1, got {horizon!r}")
    return list(materialize_prefix(schedule, horizon))


@dataclass
class HappinessTrace:
    """Per-node appearance times extracted from a schedule prefix.

    Attributes:
        horizon: number of holidays observed.
        appearances: ``{node: sorted list of holidays at which it was happy}``.
    """

    graph: ConflictGraph
    horizon: int
    appearances: Dict[Node, List[int]] = field(default_factory=dict)

    @classmethod
    def from_schedule(cls, schedule: ScheduleLike, graph: ConflictGraph, horizon: int) -> "HappinessTrace":
        """Observe ``horizon`` holidays and record every node's appearances."""
        sets = materialize(schedule, graph, horizon)
        appearances: Dict[Node, List[int]] = {p: [] for p in graph.nodes()}
        for t, happy in enumerate(sets, start=1):
            for p in happy:
                if p in appearances:
                    appearances[p].append(t)
        return cls(graph=graph, horizon=horizon, appearances=appearances)

    def gaps(self, node: Node) -> List[int]:
        """Unhappiness interval lengths for ``node``.

        The gaps are: the run before the first appearance, the runs between
        consecutive appearances, and the run after the last appearance up to
        the horizon.  A node that never appears has one gap equal to the
        whole horizon.
        """
        times = self.appearances[node]
        if not times:
            return [self.horizon]
        gaps: List[int] = []
        prev = 0
        for t in times:
            gaps.append(t - prev - 1)
            prev = t
        gaps.append(self.horizon - prev)
        return gaps

    def mul(self, node: Node) -> int:
        """Maximum unhappiness length of ``node`` within the horizon.

        Note this is the paper's ``mul`` measured on a finite prefix: for the
        bound ``mul(p) ≤ B(p)`` to be meaningfully certified, the horizon
        should be several multiples of the largest claimed bound (the
        benchmark harness picks horizons accordingly).
        """
        return max(self.gaps(node))

    def inter_appearance_gaps(self, node: Node) -> List[int]:
        """Differences between consecutive appearance times (empty if < 2 appearances)."""
        times = self.appearances[node]
        return [b - a for a, b in zip(times, times[1:])]

    def observed_period(self, node: Node) -> Optional[int]:
        """The common inter-appearance difference, or None if not constant.

        A perfectly periodic schedule exhibits a constant difference; a node
        with fewer than two appearances yields None (insufficient evidence).
        """
        diffs = self.inter_appearance_gaps(node)
        if not diffs:
            return None
        first = diffs[0]
        return first if all(d == first for d in diffs) else None

    def happiness_rate(self, node: Node) -> float:
        """Fraction of observed holidays at which ``node`` was happy."""
        return len(self.appearances[node]) / self.horizon


def max_unhappiness_lengths(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> Dict[Node, int]:
    """``{node: mul(node)}`` over the first ``horizon`` holidays."""
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="max_unhappiness_lengths",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        return matrix.muls()
    reference = HappinessTrace.from_schedule(schedule, graph, horizon)
    return {p: reference.mul(p) for p in graph.nodes()}


def unhappiness_gaps(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> Dict[Node, List[int]]:
    """``{node: list of unhappiness interval lengths}``."""
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="unhappiness_gaps",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        return matrix.all_gaps()
    reference = HappinessTrace.from_schedule(schedule, graph, horizon)
    return {p: reference.gaps(p) for p in graph.nodes()}


def observed_periods(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> Dict[Node, Optional[int]]:
    """``{node: empirically observed period or None}``."""
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="observed_periods",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        return matrix.observed_periods()
    reference = HappinessTrace.from_schedule(schedule, graph, horizon)
    return {p: reference.observed_period(p) for p in graph.nodes()}


def happiness_rates(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> Dict[Node, float]:
    """``{node: fraction of holidays hosted}``."""
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="happiness_rates",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        return matrix.happiness_rates()
    reference = HappinessTrace.from_schedule(schedule, graph, horizon)
    return {p: reference.happiness_rate(p) for p in graph.nodes()}


def normalized_gaps(
    muls: Mapping[Node, int], graph: ConflictGraph, floor_degree: int = 0
) -> Dict[Node, float]:
    """``mul(p) / (deg(p) + 1)`` — the paper's "fair share" normalisation.

    The first-come-first-grab thought experiment gives every node an
    expected hosting interval of ``deg(p) + 1``, so a normalised gap close
    to 1 means the schedule matches the fair-share landmark; the clique
    lower bound shows values below 1 are impossible in the worst case.
    ``floor_degree`` can be used to avoid division dominated by isolated
    nodes.
    """
    out: Dict[Node, float] = {}
    for p, mul in muls.items():
        denom = max(graph.degree(p), floor_degree) + 1
        out[p] = mul / denom
    return out


def jain_fairness_index(values: Iterable[float]) -> float:
    """Jain's fairness index ``(Σx)² / (n·Σx²)`` — 1.0 means perfectly even.

    Applied to normalised happiness rates ``rate(p)·(deg(p)+1)`` it captures
    how evenly a schedule distributes hosting relative to each node's fair
    share.
    """
    xs = [float(v) for v in values]
    if not xs:
        raise ValueError("fairness index of an empty collection is undefined")
    total = sum(xs)
    squares = sum(x * x for x in xs)
    if squares == 0.0:
        return 1.0
    return (total * total) / (len(xs) * squares)


@dataclass
class ScheduleReport:
    """Aggregate evaluation of one schedule on one graph.

    Produced by :func:`evaluate_schedule`; consumed by the benchmark tables.
    """

    name: str
    graph_name: str
    horizon: int
    muls: Dict[Node, int]
    periods: Dict[Node, Optional[int]]
    rates: Dict[Node, float]
    normalized: Dict[Node, float]

    @property
    def max_mul(self) -> int:
        """Worst maximum unhappiness length over all nodes."""
        return max(self.muls.values()) if self.muls else 0

    @property
    def mean_mul(self) -> float:
        """Average maximum unhappiness length."""
        return sum(self.muls.values()) / len(self.muls) if self.muls else 0.0

    @property
    def max_normalized_gap(self) -> float:
        """Worst ``mul(p)/(deg(p)+1)`` — the locality figure of merit."""
        return max(self.normalized.values()) if self.normalized else 0.0

    @property
    def mean_normalized_gap(self) -> float:
        """Average ``mul(p)/(deg(p)+1)``."""
        return sum(self.normalized.values()) / len(self.normalized) if self.normalized else 0.0

    @property
    def all_periodic(self) -> bool:
        """True when every node with ≥ 2 appearances showed a constant period."""
        return all(period is not None for period in self.periods.values())

    @property
    def fairness(self) -> float:
        """Jain index of fair-share-normalised hosting rates."""
        shares = [
            self.rates[p] * (deg + 1)
            for p, deg in self._degrees.items()
        ]
        return jain_fairness_index(shares)

    # populated by evaluate_schedule
    _degrees: Dict[Node, int] = field(default_factory=dict, repr=False)

    def summary(self) -> Dict[str, float]:
        """Flat dictionary of headline numbers (used for table rows)."""
        return {
            "max_mul": float(self.max_mul),
            "mean_mul": self.mean_mul,
            "max_norm_gap": self.max_normalized_gap,
            "mean_norm_gap": self.mean_normalized_gap,
            "fairness": self.fairness,
            "periodic_fraction": (
                sum(1 for v in self.periods.values() if v is not None) / len(self.periods)
                if self.periods
                else 1.0
            ),
        }


def evaluate_schedule(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    name: str = "schedule",
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> ScheduleReport:
    """Run the full metric suite over a schedule prefix and return a report.

    ``config`` selects the evaluation engine: ``EngineConfig.backend``
    (``"auto"``/``"numpy"``/``"bitmask"`` for the bit-parallel trace,
    ``"sets"`` for the frozenset reference) and ``EngineConfig.horizon_mode``
    (``"dense"``/``"stream"``/``"auto"``).  Passing a pre-built ``trace``
    skips trace construction entirely so :class:`repro.api.Session` and the
    runner can share one engine with the validator.  The ``backend``/
    ``mode``/``chunk``/``jobs`` keywords are the deprecated pre-config
    spelling.  All engines produce identical reports — this is enforced by
    the differential tests in ``tests/core/test_trace.py`` and
    ``tests/core/test_stream.py``.
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="evaluate_schedule",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        muls = matrix.muls()
        periods = matrix.observed_periods()
        rates = matrix.happiness_rates()
    else:
        reference = HappinessTrace.from_schedule(schedule, graph, horizon)
        muls = {p: reference.mul(p) for p in graph.nodes()}
        periods = {p: reference.observed_period(p) for p in graph.nodes()}
        rates = {p: reference.happiness_rate(p) for p in graph.nodes()}
    report = ScheduleReport(
        name=name,
        graph_name=graph.name,
        horizon=horizon,
        muls=muls,
        periods=periods,
        rates=rates,
        normalized=normalized_gaps(muls, graph),
    )
    report._degrees = graph.degrees()
    return report

"""`EngineConfig` — the single carrier of trace-engine execution knobs.

Four PRs of engine growth each threaded a new keyword through every layer:
``evaluate_schedule`` / ``validate_schedule`` / ``run_scheduler`` grew five
parallel execution parameters (``backend``, ``mode``, ``chunk``, ``jobs``,
``trace``) that were copied verbatim through metrics, validation, the
runner, the experiment engine and four CLI subcommands.  This module
consolidates them the way :class:`~repro.analysis.engine.HorizonPolicy`
consolidated the horizon rules: one frozen dataclass owns every knob, is
validated in one place, serializes to JSON (for spec files), and resolves
``"auto"`` values to concrete choices.

The knobs:

* ``backend`` — cell storage: ``"numpy"`` (dense bool matrix),
  ``"bitmask"`` (pure-Python big ints), ``"sets"`` (the frozenset reference
  engine), or ``"auto"`` (numpy when importable, bitmask otherwise).
* ``horizon_mode`` — horizon representation: one ``"dense"`` n × horizon
  matrix, ``"stream"``ed fixed-width chunks at O(n × chunk) memory, or
  ``"auto"`` (dense until the matrix would exceed
  :data:`repro.core.trace.AUTO_STREAM_BYTES`).
* ``chunk`` — streaming chunk width (``None`` =
  :data:`repro.core.trace.DEFAULT_CHUNK`).
* ``stream_jobs`` — worker processes for the streamed chunk scan.  Purely a
  wall-clock knob: results are identical for every value (the
  :class:`~repro.core.trace.StreamedTrace` determinism contract).
* ``window`` — sliding-window memo width for generator-backed schedules
  (see :class:`~repro.core.schedule.GeneratorSchedule`).  Applied by
  :func:`~repro.analysis.runner.run_scheduler` /
  :meth:`repro.api.Session.run` to schedulers that support it
  (:meth:`~repro.algorithms.base.Scheduler.with_window`); schedulers that
  don't ignore it.
* ``batch`` — schedules stacked per batched trace kernel
  (:class:`~repro.core.trace.TraceBatch`) by the experiment engine's
  batching planner.  ``None`` auto-sizes from
  :data:`~repro.core.trace.AUTO_STREAM_BYTES`; ``1`` disables batching.
  Purely a wall-clock knob: the planner provably never changes a record
  (differentially tested), so records are byte-identical for every value
  modulo the timing metrics.
* ``checkpoint`` — whether streamed traces may use the generator
  checkpoint/restore protocol (:class:`~repro.core.schedule.GeneratorSchedule`
  built with ``checkpoint=``/``restore=``) to parallelise generator-backed
  schedules and replay evicted windows.  ``False`` forces the historical
  serial forward scan.  Purely a wall-clock knob by the same determinism
  contract as ``stream_jobs``; like every knob it marks ``cell_id`` only
  when non-default, so existing sinks and store cells never move.

Every entry point from :func:`repro.core.metrics.build_trace` up to the CLI
accepts ``config: EngineConfig``; the historical per-call keywords survive
as a deprecated shim, translated into a config in exactly one place
(:func:`coerce_config`) with one :class:`DeprecationWarning` per call.
"""

from __future__ import annotations

import json
import warnings
from dataclasses import dataclass, fields, replace
from typing import Dict, Mapping, Optional

from repro.core.trace import (
    BACKENDS,
    HORIZON_MODES,
    resolve_backend,
    resolve_horizon_mode,
)

__all__ = [
    "EngineConfig",
    "ResolvedEngine",
    "DEFAULT_CONFIG",
    "RESULT_KNOBS",
    "WALL_CLOCK_KNOBS",
    "coerce_config",
    "config_with",
]

#: knobs that change computed results: part of every content-addressed
#: cache key (and, when non-default, of experiment cell ids).  Every
#: EngineConfig field must appear in exactly one of RESULT_KNOBS /
#: WALL_CLOCK_KNOBS — enforced statically by lint rule REP104, so a new
#: knob cannot ship without deciding its hashing story.
RESULT_KNOBS = frozenset({"backend", "horizon_mode", "chunk", "window"})

#: knobs the determinism contracts prove result-neutral (``stream_jobs``,
#: ``batch``, ``checkpoint`` — parallelism and batching never change an
#: answer, differentially tested): excluded from cache keys so warming a
#: cache at one parallelism serves every other.
WALL_CLOCK_KNOBS = frozenset({"stream_jobs", "batch", "checkpoint"})

#: backends EngineConfig accepts: the matrix backends plus the frozenset
#: reference engine (which is handled above the TraceMatrix layer).
CONFIG_BACKENDS = tuple(BACKENDS) + ("sets",)

_SETS_STREAM_ERROR = (
    "backend='sets' (the frozenset reference) has no streaming mode; "
    "use backend='auto'/'numpy'/'bitmask' with horizon_mode='stream', "
    "or horizon_mode='dense'/'auto' with backend='sets'"
)


@dataclass(frozen=True)
class ResolvedEngine:
    """The concrete engine choice an :class:`EngineConfig` resolves to.

    ``backend`` is always concrete (``"numpy"``, ``"bitmask"`` or
    ``"sets"``).  ``mode`` is ``"dense"`` or ``"stream"`` when the graph
    size and horizon were supplied to :meth:`EngineConfig.resolve` (or the
    mode was explicit), ``"auto"`` when they weren't, and ``"sets"`` for the
    reference engine — matching the ``horizon_mode`` stamp
    :class:`~repro.analysis.runner.RunOutcome` records.
    """

    backend: str
    mode: str
    chunk: Optional[int]
    stream_jobs: int
    window: Optional[int]
    checkpoint: bool = True

    @property
    def uses_matrix(self) -> bool:
        """True when a TraceMatrix/StreamedTrace engine answers queries
        (False for the frozenset reference)."""
        return self.backend != "sets"


@dataclass(frozen=True)
class EngineConfig:
    """One immutable object carrying every trace-engine execution knob.

    Construction validates every field (including the ``sets`` + ``stream``
    combination, which no engine supports), so an invalid configuration
    fails where it is written, not deep inside a worker process.  Instances
    are hashable and picklable; derive variants with
    :func:`dataclasses.replace`.
    """

    backend: str = "auto"
    horizon_mode: str = "auto"
    chunk: Optional[int] = None
    stream_jobs: int = 1
    window: Optional[int] = None
    batch: Optional[int] = None
    checkpoint: bool = True

    def __post_init__(self) -> None:
        if self.backend not in CONFIG_BACKENDS:
            raise ValueError(
                f"unknown trace backend {self.backend!r}; expected one of {CONFIG_BACKENDS}"
            )
        if self.horizon_mode not in HORIZON_MODES:
            raise ValueError(
                f"unknown horizon_mode {self.horizon_mode!r}; expected one of {HORIZON_MODES}"
            )
        if self.backend == "sets" and self.horizon_mode == "stream":
            raise ValueError(_SETS_STREAM_ERROR)
        if self.chunk is not None and int(self.chunk) < 1:
            raise ValueError(f"chunk width must be >= 1, got {self.chunk!r}")
        if int(self.stream_jobs) < 1:
            raise ValueError(f"stream_jobs must be >= 1, got {self.stream_jobs!r}")
        if self.window is not None and int(self.window) < 1:
            raise ValueError(f"window must be >= 1, got {self.window!r}")
        if self.batch is not None and int(self.batch) < 1:
            raise ValueError(f"batch size must be >= 1, got {self.batch!r}")
        if not isinstance(self.checkpoint, bool):
            raise ValueError(f"checkpoint must be a bool, got {self.checkpoint!r}")

    # -- resolution ----------------------------------------------------------
    def resolve(
        self, num_nodes: Optional[int] = None, horizon: Optional[int] = None
    ) -> ResolvedEngine:
        """Resolve ``"auto"`` values to the concrete engine for one run.

        The backend always resolves (raising :class:`RuntimeError` when
        ``"numpy"`` is requested but not installed); ``horizon_mode="auto"``
        resolves by estimated dense-matrix size when ``num_nodes`` and
        ``horizon`` are given and stays ``"auto"`` otherwise — so the CLI
        can validate a config up front before any graph exists.
        """
        if self.backend == "sets":
            return ResolvedEngine(
                "sets", "sets", self.chunk, self.stream_jobs, self.window, self.checkpoint
            )
        backend = resolve_backend(self.backend)
        if self.horizon_mode == "auto" and num_nodes is not None and horizon is not None:
            mode = resolve_horizon_mode("auto", num_nodes, horizon, backend)
        else:
            mode = self.horizon_mode
        return ResolvedEngine(
            backend, mode, self.chunk, self.stream_jobs, self.window, self.checkpoint
        )

    # -- serialization -------------------------------------------------------
    def to_dict(self) -> Dict[str, object]:
        """JSON-serializable form (embedded in spec files and cell hashes)."""
        return {f.name: getattr(self, f.name) for f in fields(self)}

    @classmethod
    def from_dict(cls, payload: Mapping[str, object]) -> "EngineConfig":
        """Inverse of :meth:`to_dict`; unknown keys are rejected."""
        known = {f.name for f in fields(cls)}
        unknown = set(payload) - known
        if unknown:
            raise ValueError(f"unknown EngineConfig fields: {sorted(unknown)}")
        return cls(**payload)

    def to_json(self) -> str:
        """The config as a canonical JSON string."""
        return json.dumps(self.to_dict(), sort_keys=True)

    @classmethod
    def from_json(cls, payload: str) -> "EngineConfig":
        """Inverse of :meth:`to_json`."""
        return cls.from_dict(json.loads(payload))

    def non_default(self) -> Dict[str, object]:
        """The fields that differ from the defaults.

        This is what the experiment engine hashes into cell ids: default
        knobs leave the id untouched, so results sinks recorded before a
        knob existed keep resuming (dense and stream produce identical
        records; parallelism never changes a result).
        """
        default = DEFAULT_CONFIG
        return {
            f.name: getattr(self, f.name)
            for f in fields(self)
            if getattr(self, f.name) != getattr(default, f.name)
        }

    def cache_key(self) -> str:
        """Canonical string form of the knobs that change computed results.

        The config component of content-addressed cache keys (notably the
        shared trace cache behind :mod:`repro.serve`): canonical JSON of the
        :meth:`non_default` fields, minus :data:`WALL_CLOCK_KNOBS` — the
        knobs that provably never change an answer, wall-clock only by the
        determinism contracts that keep results identical for every value
        of each.  Like cell ids, default knobs leave the key untouched, so
        keys stay stable as new knobs grow onto the config.
        """
        overrides = {
            k: v
            for k, v in self.non_default().items()
            if k not in WALL_CLOCK_KNOBS
        }
        return json.dumps(overrides, sort_keys=True)

    def describe(self) -> str:
        """Short human-readable form: only the non-default knobs."""
        overrides = self.non_default()
        if not overrides:
            return "EngineConfig()"
        return "EngineConfig(" + ", ".join(f"{k}={v!r}" for k, v in overrides.items()) + ")"


#: The all-defaults config every entry point falls back to.
DEFAULT_CONFIG = EngineConfig()

#: deprecated per-call keyword -> EngineConfig field.  ``mode`` is the
#: metrics-layer spelling and ``horizon_mode`` the runner/spec spelling of
#: the same knob; likewise ``jobs`` / ``stream_jobs``.
_LEGACY_FIELDS = {
    "backend": "backend",
    "mode": "horizon_mode",
    "horizon_mode": "horizon_mode",
    "chunk": "chunk",
    "jobs": "stream_jobs",
    "stream_jobs": "stream_jobs",
    "window": "window",
}


def coerce_config(
    config: Optional[EngineConfig],
    legacy: Mapping[str, object],
    *,
    caller: str,
    stacklevel: int = 3,
) -> EngineConfig:
    """Translate deprecated per-call knobs into an :class:`EngineConfig`.

    The one place the back-compat shim lives: every entry point passes its
    historical keyword values (``None`` = not given) through here.  When any
    are set, one :class:`DeprecationWarning` is emitted for the whole call
    and the values become a config; combining them with an explicit
    ``config=`` is a :class:`TypeError` (there would be no way to tell which
    side wins).  With no legacy values this is a pass-through.
    """
    given = {k: v for k, v in legacy.items() if v is not None}
    if not given:
        return config if config is not None else DEFAULT_CONFIG
    if config is not None:
        raise TypeError(
            f"{caller}() got both config= and the deprecated keyword(s) "
            f"{sorted(given)}; put everything on the EngineConfig"
        )
    warnings.warn(
        f"{caller}(): the {', '.join(sorted(given))} keyword(s) are deprecated; "
        "pass config=EngineConfig(...) instead (repro.core.config)",
        DeprecationWarning,
        stacklevel=stacklevel,
    )
    return EngineConfig(**{_LEGACY_FIELDS[k]: v for k, v in given.items()})


def config_with(config: Optional[EngineConfig], **overrides: object) -> EngineConfig:
    """A copy of ``config`` (default config when ``None``) with overrides
    applied — convenience for callers layering flags over a spec config."""
    return replace(config or DEFAULT_CONFIG, **overrides)

"""Schedule abstractions: infinite sequences of independent sets.

A *schedule* answers the question "who is happy at holiday ``t``?" for every
``t ≥ 1``.  The paper distinguishes:

* arbitrary (possibly aperiodic) schedules — e.g. the Phased Greedy
  scheduler of Section 3, whose future depends on its evolving coloring;
* **perfectly periodic** schedules — every node ``p`` has a period ``τ_p``
  and a phase, and is happy exactly at holidays ``t ≡ phase_p (mod τ_p)``
  (Sections 4 and 5).

:class:`Schedule` is the minimal interface consumed by the metrics,
validation and benchmark layers.  :class:`PeriodicSchedule` is the concrete
perfectly-periodic representation (a ``{node: (period, phase)}`` table);
:class:`ExplicitSchedule` wraps a pre-computed finite prefix (optionally
cyclic); :class:`GeneratorSchedule` adapts an online scheduler object.
"""

from __future__ import annotations

import math
from abc import ABC, abstractmethod
from dataclasses import dataclass
from typing import TYPE_CHECKING, Callable, Dict, FrozenSet, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

from repro.core.problem import ConflictGraph, Node

if TYPE_CHECKING:  # pragma: no cover - import cycle guard; trace.py imports us
    from repro.core.trace import TraceMatrix

__all__ = [
    "Schedule",
    "PeriodicSchedule",
    "ExplicitSchedule",
    "GeneratorSchedule",
    "GeneratorCheckpoint",
    "SlotAssignment",
]


class Schedule(ABC):
    """An infinite sequence of happy (independent) sets over a conflict graph."""

    def __init__(self, graph: ConflictGraph) -> None:
        self.graph = graph

    @abstractmethod
    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        """Return the set of happy parents at holiday ``holiday`` (1-indexed)."""

    # -- derived helpers -----------------------------------------------------------
    def is_happy(self, node: Node, holiday: int) -> bool:
        """True when ``node`` is happy at ``holiday``."""
        return node in self.happy_set(holiday)

    def prefix(self, horizon: int, start: int = 1) -> List[FrozenSet[Node]]:
        """Materialise holidays ``start .. start + horizon - 1`` as a list of sets."""
        if horizon < 0:
            raise ValueError(f"horizon must be non-negative, got {horizon!r}")
        return [self.happy_set(t) for t in range(start, start + horizon)]

    def iter_holidays(self, horizon: int, start: int = 1) -> Iterator[Tuple[int, FrozenSet[Node]]]:
        """Yield ``(holiday, happy_set)`` pairs for a finite horizon."""
        for t in range(start, start + horizon):
            yield t, self.happy_set(t)

    def appearances(self, node: Node, horizon: int, start: int = 1) -> List[int]:
        """Holidays within the horizon at which ``node`` is happy."""
        return [t for t in range(start, start + horizon) if self.is_happy(node, t)]

    def is_periodic(self) -> bool:
        """True when this schedule advertises perfect periodicity."""
        return False

    def node_period(self, node: Node) -> Optional[int]:
        """The advertised period of ``node`` (None for aperiodic schedules)."""
        return None

    def describe(self) -> str:
        """Short human-readable description used by benchmark tables."""
        return type(self).__name__

    def trace(self, horizon: int, backend: str = "auto") -> "TraceMatrix":
        """Materialise the first ``horizon`` holidays as a dense occupancy matrix.

        This is the bit-parallel counterpart of :meth:`prefix`: one
        :class:`~repro.core.trace.TraceMatrix` built once and shared by the
        metric suite and the validator.  Subclasses get vectorized fast paths
        automatically (periodic schedules never materialise a single happy
        set).  ``backend`` is ``"auto"`` (numpy when available, else the
        pure-Python bitmask), ``"numpy"`` or ``"bitmask"``.
        """
        from repro.core.trace import TraceMatrix

        return TraceMatrix.from_schedule(self, self.graph, horizon, backend=backend)


@dataclass(frozen=True)
class SlotAssignment:
    """A perfectly-periodic assignment for a single node.

    The node is happy at every holiday ``t >= 1`` with
    ``t % period == phase % period``.
    """

    period: int
    phase: int

    def __post_init__(self) -> None:
        if self.period < 1:
            raise ValueError(f"period must be >= 1, got {self.period!r}")
        if not (0 <= self.phase < self.period):
            object.__setattr__(self, "phase", self.phase % self.period)

    def is_happy(self, holiday: int) -> bool:
        """True when the node is happy at ``holiday``."""
        return holiday % self.period == self.phase

    def next_happy(self, holiday: int) -> int:
        """The first holiday ``>= holiday`` at which the node is happy."""
        offset = (self.phase - holiday) % self.period
        return holiday + offset


class PeriodicSchedule(Schedule):
    """A perfectly periodic schedule given by one :class:`SlotAssignment` per node.

    The constructor verifies that the assignment never makes two adjacent
    nodes happy at the same holiday — this is a *static* check over the
    pairwise congruences (two assignments ``(τ₁, φ₁)`` and ``(τ₂, φ₂)``
    collide iff ``φ₁ ≡ φ₂ (mod gcd(τ₁, τ₂))``), so it certifies the entire
    infinite schedule, not just a finite prefix.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        assignments: Mapping[Node, SlotAssignment],
        check_conflicts: bool = True,
        name: str = "periodic",
    ) -> None:
        super().__init__(graph)
        missing = [p for p in graph.nodes() if p not in assignments]
        if missing:
            raise ValueError(f"assignments missing for nodes: {missing!r}")
        extra = [p for p in assignments if p not in graph]
        if extra:
            raise ValueError(f"assignments given for unknown nodes: {extra!r}")
        self.assignments: Dict[Node, SlotAssignment] = dict(assignments)
        self.name = name
        if check_conflicts:
            conflict = self.find_conflict()
            if conflict is not None:
                u, v, holiday = conflict
                raise ValueError(
                    f"assignment conflict: adjacent nodes {u!r} and {v!r} are both "
                    f"scheduled at holiday {holiday}"
                )

    @staticmethod
    def _congruence_collision(a: SlotAssignment, b: SlotAssignment) -> Optional[int]:
        """Return the earliest colliding holiday for two assignments, or None.

        By the Chinese Remainder Theorem the congruences
        ``t ≡ φ_a (mod τ_a)`` and ``t ≡ φ_b (mod τ_b)`` have a common
        solution iff ``φ_a ≡ φ_b (mod gcd(τ_a, τ_b))``; when they do, the
        solutions form a single residue class modulo ``lcm(τ_a, τ_b)``,
        computed here in closed form (O(log) arithmetic) rather than by
        scanning up to the lcm, which blows up for large coprime periods.
        """
        g = math.gcd(a.period, b.period)
        if (a.phase - b.phase) % g != 0:
            return None
        lcm = a.period // g * b.period
        # CRT: t = φ_a + τ_a·k with k ≡ (φ_b - φ_a)/g · (τ_a/g)⁻¹ (mod τ_b/g).
        m = b.period // g
        k = ((b.phase - a.phase) // g * pow(a.period // g, -1, m)) % m
        t0 = (a.phase + a.period * k) % lcm
        return t0 if t0 >= 1 else lcm  # holidays are numbered from 1

    def find_conflict(self) -> Optional[Tuple[Node, Node, int]]:
        """Return ``(u, v, holiday)`` for some conflicting adjacent pair, or None."""
        for u, v in self.graph.edges():
            collision = self._congruence_collision(self.assignments[u], self.assignments[v])
            if collision is not None:
                return u, v, collision
        return None

    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        if holiday < 1:
            raise ValueError(f"holidays are numbered from 1, got {holiday!r}")
        return frozenset(
            p for p, slot in self.assignments.items() if slot.is_happy(holiday)
        )

    def is_periodic(self) -> bool:
        return True

    def node_period(self, node: Node) -> int:
        return self.assignments[node].period

    def node_phase(self, node: Node) -> int:
        """The phase (offset modulo the period) of ``node``."""
        return self.assignments[node].phase

    def periods(self) -> Dict[Node, int]:
        """``{node: period}`` for every node."""
        return {p: slot.period for p, slot in self.assignments.items()}

    def global_period(self) -> int:
        """The least common multiple of all node periods (the schedule's cycle)."""
        lcm = 1
        for slot in self.assignments.values():
            lcm = lcm // math.gcd(lcm, slot.period) * slot.period
        return lcm

    def describe(self) -> str:
        return f"{type(self).__name__}({self.name})"


class ExplicitSchedule(Schedule):
    """A schedule backed by an explicit finite list of happy sets.

    When ``cyclic`` is True the list is repeated forever (holiday ``t`` maps
    to entry ``(t - 1) mod len``); otherwise querying beyond the recorded
    prefix raises :class:`IndexError`.  Used to snapshot online schedulers
    and to feed hand-crafted sequences to the metrics in tests.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        happy_sets: Sequence[Iterable[Node]],
        cyclic: bool = False,
        validate: bool = True,
        name: str = "explicit",
    ) -> None:
        super().__init__(graph)
        self._sets: List[FrozenSet[Node]] = [frozenset(s) for s in happy_sets]
        self.cyclic = cyclic
        self.name = name
        if validate:
            for idx, happy in enumerate(self._sets, start=1):
                unknown = [p for p in happy if p not in graph]
                if unknown:
                    raise ValueError(f"holiday {idx} schedules unknown nodes {unknown!r}")
                if not graph.is_independent_set(happy):
                    raise ValueError(f"holiday {idx} is not an independent set: {sorted(map(repr, happy))}")

    def __len__(self) -> int:
        return len(self._sets)

    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        if holiday < 1:
            raise ValueError(f"holidays are numbered from 1, got {holiday!r}")
        idx = holiday - 1
        if self.cyclic and self._sets:
            return self._sets[idx % len(self._sets)]
        if idx >= len(self._sets):
            raise IndexError(
                f"holiday {holiday} is beyond the recorded horizon of {len(self._sets)}"
            )
        return self._sets[idx]

    def is_periodic(self) -> bool:
        return self.cyclic

    def describe(self) -> str:
        suffix = "cyclic" if self.cyclic else f"{len(self._sets)} holidays"
        return f"{type(self).__name__}({self.name}, {suffix})"


class GeneratorSchedule(Schedule):
    """Adapter turning an online "next holiday" callback into a :class:`Schedule`.

    The callback is invoked lazily and exactly once per holiday, in order;
    results are memoised so repeated queries (and out-of-order reads within
    the already-generated prefix) are cheap.  This is how the Section 3
    Phased Greedy scheduler — which must be run forward — is exposed through
    the common interface.

    By default the memo cache grows with the highest holiday ever queried,
    which is what historically kept aperiodic schedulers from streaming at
    bounded memory.  Passing ``window=W`` turns the cache into a **sliding
    window**: at least the last ``W`` generated holidays stay retrievable,
    and everything far enough behind the generation frontier is evicted
    once the cache crosses its high-water mark of ``2·W`` entries (batched
    eviction keeps ``happy_set`` amortised O(1); resident sets never exceed
    ``2·W``).  The trade-off is that a windowed schedule supports a single
    forward pass: reading a holiday at or below :attr:`evicted_below`
    raises :class:`ValueError`.  That is exactly the access pattern of the
    streaming trace engine's one summary pass
    (:class:`repro.core.trace.StreamedTrace`), so ``window= a few chunks``
    lets generator-backed schedulers evaluate arbitrary horizons in
    ``O(window + chunk)`` memory.  Re-reads of evicted history are only
    possible through the checkpoint protocol below; without it,
    per-appearance queries that stream a second pass
    (``appearances``/``all_gaps``) are off the table for windowed schedules.

    **Checkpoint/restore contract.**  A generator schedule is
    *checkpointable* when constructed with both

    * ``checkpoint=`` — a zero-argument callable returning ``bytes`` that
      serialize the generator's state *at the current generation frontier*
      (typically a bound method of the scheduler's state object; it is
      called only in the constructing process and never pickled), and
    * ``restore=`` — a **module-level, picklable** callable
      ``restore(graph, state: bytes) -> step`` rebuilding an equivalent
      step callback from those bytes.

    :meth:`checkpoint` then snapshots the state after holiday ``t`` (only
    at the frontier — generator state cannot be rewound), and
    :meth:`checkpoint_handle` packages the snapshot into a picklable
    :class:`GeneratorCheckpoint` whose :meth:`GeneratorCheckpoint.resume`
    — possibly in another process — yields a schedule producing holidays
    ``t+1, t+2, ...`` byte-identically to the original.  This is what lets
    :class:`repro.core.trace.StreamedTrace` fan generator-backed schedules
    out to worker processes instead of falling back to a serial scan, and
    what restores second-pass queries on windowed schedules.  The resumed
    schedule is created with ``start=t``: holidays ``<= t`` count as
    evicted (they live only on the side that generated them).

    A ``restore=`` factory may additionally attach a zero-argument
    ``checkpoint`` attribute to the step it returns (serializing the
    *resumed* state); when present, the resumed schedule is checkpointable
    in turn, so checkpoints chain indefinitely.  Both in-tree
    implementations (:mod:`repro.algorithms.phased_greedy`,
    first-come-first-grab in :mod:`repro.algorithms.naive`) do this.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        step: Callable[[int], Iterable[Node]],
        validate: bool = True,
        name: str = "generator",
        window: Optional[int] = None,
        start: int = 0,
        checkpoint: Optional[Callable[[], bytes]] = None,
        restore: Optional[Callable[[ConflictGraph, bytes], Callable[[int], Iterable[Node]]]] = None,
    ) -> None:
        super().__init__(graph)
        if window is not None and window < 1:
            raise ValueError(f"window must be >= 1, got {window!r}")
        if start < 0:
            raise ValueError(f"start must be >= 0, got {start!r}")
        self._step = step
        self._cache: List[FrozenSet[Node]] = []
        self.validate = validate
        self.name = name
        self.window = window
        self.start = int(start)
        # holidays <= start were generated before this (possibly resumed)
        # schedule existed; they share the eviction bookkeeping.
        self._evicted = self.start  # number of leading holidays not in the cache
        self._checkpoint = checkpoint
        self._restore = restore

    @property
    def evicted_below(self) -> int:
        """Holidays ``1..evicted_below`` are no longer retrievable (0 when
        nothing has been evicted; always 0 for unwindowed, unresumed
        schedules)."""
        return self._evicted

    @property
    def checkpointable(self) -> bool:
        """True when this schedule carries both sides of the checkpoint
        protocol (a ``checkpoint=`` serializer and a ``restore=`` factory)."""
        return self._checkpoint is not None and self._restore is not None

    def frontier(self) -> int:
        """The generation frontier: the highest holiday generated so far
        (``start`` for a fresh schedule)."""
        return self._evicted + len(self._cache)

    def checkpoint(self, t: int) -> bytes:
        """Serialize the generator's state after holiday ``t``.

        ``t`` must equal :meth:`frontier` — generator state only exists at
        the frontier and cannot be rewound.  Feed the bytes to
        :meth:`restore` (or ship a :meth:`checkpoint_handle`) to resume.
        """
        if not self.checkpointable:
            raise ValueError(
                f"{self.describe()} does not implement the checkpoint protocol "
                "(constructed without checkpoint=/restore= callables)"
            )
        if t != self.frontier():
            raise ValueError(
                f"checkpoints are taken at the generation frontier: requested "
                f"t={t}, frontier={self.frontier()}"
            )
        return self._checkpoint()

    def restore(self, state: bytes, start: int) -> "GeneratorSchedule":
        """A new schedule resuming from ``state`` (as returned by
        :meth:`checkpoint` at holiday ``start``), generating holidays
        ``start+1, start+2, ...`` identically to this one."""
        if self._restore is None:
            raise ValueError(
                f"{self.describe()} does not implement the checkpoint protocol "
                "(constructed without a restore= callable)"
            )
        step = self._restore(self.graph, state)
        return GeneratorSchedule(
            self.graph,
            step,
            validate=self.validate,
            name=self.name,
            window=self.window,
            start=start,
            # restore factories attach a `checkpoint` attribute to the step
            # they return (serializing the resumed state), which makes the
            # resumed schedule checkpointable in turn — checkpoints chain.
            checkpoint=getattr(step, "checkpoint", None),
            restore=self._restore,
        )

    def checkpoint_handle(self, t: int) -> "GeneratorCheckpoint":
        """A picklable :class:`GeneratorCheckpoint` of the state after
        holiday ``t`` (which must be the frontier, like :meth:`checkpoint`)."""
        return GeneratorCheckpoint(
            graph=self.graph,
            restore=self._restore,
            state=self.checkpoint(t),
            start=t,
            name=self.name,
            validate=self.validate,
            window=self.window,
        )

    def happy_set(self, holiday: int) -> FrozenSet[Node]:
        if holiday < 1:
            raise ValueError(f"holidays are numbered from 1, got {holiday!r}")
        if holiday <= self._evicted:
            if holiday <= self.start:
                raise ValueError(
                    f"holiday {holiday} predates this resumed schedule "
                    f"(resumed from a checkpoint at holiday {self.start}); "
                    "only the generating side retains earlier holidays"
                )
            raise ValueError(
                f"holiday {holiday} was evicted from the generator's sliding window "
                f"(window={self.window}, retained from holiday {self._evicted + 1}); "
                "windowed generator schedules support a single forward pass"
            )
        while self._evicted + len(self._cache) < holiday:
            t = self._evicted + len(self._cache) + 1
            happy = frozenset(self._step(t))
            if self.validate and not self.graph.is_independent_set(happy):
                raise ValueError(f"holiday {t} produced a non-independent set: {sorted(map(repr, happy))}")
            self._cache.append(happy)
            # batched low-water eviction: trim back to `window` entries only
            # after crossing 2×window, so the amortised cost per holiday is
            # O(1) while the guaranteed lookback stays >= window.
            if self.window is not None and len(self._cache) > 2 * self.window:
                drop = len(self._cache) - self.window
                del self._cache[:drop]
                self._evicted += drop
        return self._cache[holiday - self._evicted - 1]

    def describe(self) -> str:
        suffix = "" if self.window is None else f", window={self.window}"
        if self.start:
            suffix += f", resumed@{self.start}"
        return f"{type(self).__name__}({self.name}{suffix})"


@dataclass(frozen=True)
class GeneratorCheckpoint:
    """A picklable resume point of a checkpointable :class:`GeneratorSchedule`.

    Created by :meth:`GeneratorSchedule.checkpoint_handle`; everything it
    carries pickles by value or by reference (``restore`` must be a
    module-level function — closures from a scheduler's ``build()`` cannot
    cross process boundaries, which is exactly why the protocol splits the
    serializer from the factory).  :meth:`resume` reconstructs a schedule
    generating holidays ``start+1, start+2, ...`` byte-identically to the
    one that was checkpointed — the unit the streaming trace engine ships
    to its worker processes.
    """

    graph: ConflictGraph
    restore: Callable[[ConflictGraph, bytes], Callable[[int], Iterable[Node]]]
    state: bytes
    start: int
    name: str = "generator"
    validate: bool = True
    window: Optional[int] = None

    def resume(self) -> GeneratorSchedule:
        """Rebuild the schedule from this snapshot (any process)."""
        step = self.restore(self.graph, self.state)
        return GeneratorSchedule(
            self.graph,
            step,
            validate=self.validate,
            name=self.name,
            window=self.window,
            start=self.start,
            checkpoint=getattr(step, "checkpoint", None),
            restore=self.restore,
        )

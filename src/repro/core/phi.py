"""Iterated-logarithm machinery for the color-bound lower and upper bounds.

Section 4 of the paper is built around the function

.. math::

    \\phi(i) = \\begin{cases} 1 & i \\le 1 \\\\ i \\cdot \\phi(\\log i) & i > 1 \\end{cases}

i.e. ``phi(i) = i * log i * log log i * ... * 1`` — the product of the
iterated base-2 logarithms of ``i`` down to 1.  Theorem 4.1 shows that any
color-based schedule must give a node colored ``c`` a gap of ``Ω(φ(c))``
(because ``Σ_c 1/f(c) ≤ 1`` must hold and, by the Cauchy condensation test,
``φ`` is essentially the smallest function with a convergent reciprocal sum).
Theorem 4.2 shows the Elias-omega construction achieves
``2^{1+log* c} · φ(c)``.

This module provides exact/real-valued evaluations of ``φ``, the iterated
logarithm ``log*``, the Elias-omega code-length function ``ρ`` (in its
ceiling form used by the paper's Theorem 4.2 proof), the resulting period
bound, and reciprocal-sum utilities used by the lower-bound experiment (E2).
"""

from __future__ import annotations

import math
from typing import Callable, Iterable, List, Tuple

__all__ = [
    "log_star",
    "iterated_log",
    "iterated_log_chain",
    "phi",
    "phi_int",
    "rho_ceil",
    "elias_period_bound",
    "reciprocal_sum",
    "reciprocal_sum_partial",
    "minimal_divergent_profile",
    "condensation_feasible",
]


def iterated_log(x: float, times: int) -> float:
    """Apply ``log2`` to ``x`` exactly ``times`` times.

    ``iterated_log(x, 0) == x``.  Raises :class:`ValueError` if an
    intermediate value becomes non-positive before the final application
    (the logarithm would be undefined).
    """
    if times < 0:
        raise ValueError("times must be non-negative")
    value = float(x)
    for _ in range(times):
        if value <= 0:
            raise ValueError(f"iterated log undefined: reached {value} before finishing")
        value = math.log2(value)
    return value


def iterated_log_chain(x: float) -> List[float]:
    """Return ``[x, log x, log log x, ...]`` down to the first value ``<= 1``.

    The chain always contains at least ``[x]``; the last element is the first
    value that is ``<= 1`` (or ``x`` itself if ``x <= 1``).
    """
    chain = [float(x)]
    while chain[-1] > 1.0:
        chain.append(math.log2(chain[-1]))
    return chain


def log_star(x: float) -> int:
    """Iterated logarithm ``log* x``: number of times ``log2`` must be applied
    before the value drops to ``<= 1``.

    ``log_star(1) == 0``, ``log_star(2) == 1``, ``log_star(4) == 2``,
    ``log_star(16) == 3``, ``log_star(65536) == 4``.
    """
    if x <= 1.0:
        return 0
    count = 0
    value = float(x)
    while value > 1.0:
        value = math.log2(value)
        count += 1
    return count


def phi(x: float) -> float:
    """The paper's ``φ`` function: ``φ(x) = x · φ(log x)`` with ``φ(x)=1`` for ``x ≤ 1``.

    Equivalently the product of all elements of :func:`iterated_log_chain`
    that are ``> 1`` times the final element clipped to 1 — i.e.
    ``x · log x · log log x · ... · (last value > 1)``.
    """
    if x <= 1.0:
        return 1.0
    return float(x) * phi(math.log2(x))


def phi_int(c: int) -> float:
    """``φ`` evaluated on an integer color ``c ≥ 1`` (convenience wrapper)."""
    if c < 1:
        raise ValueError(f"colors are positive integers, got {c!r}")
    return phi(float(c))


def rho_ceil(i: int) -> int:
    """Exact Elias-omega code length ``ρ(i)`` (Properties 1 in the paper).

    ``ρ(i) = 1 + rb(i)`` where ``rb(1) = 0`` and for ``i > 1``
    ``rb(i) = |B(i)| + rb(|B(i)| - 1)`` with ``|B(i)| = ⌊log i⌋ + 1`` the
    number of bits in the binary representation of ``i``.  The paper states
    the same quantity with ceilings (``1 + ⌈log i⌉ + ⌈log(⌈log i⌉-1)⌉ + …``);
    both forms agree because ``|B(i)| - 1 = ⌊log i⌋`` and the recursion is on
    exact bit counts.  ``rho_ceil(1) == 1``.

    The exact encoded length produced by
    :func:`repro.coding.elias.omega_length` equals this value; the test
    suite cross-checks the two implementations.
    """
    if i < 1:
        raise ValueError(f"rho is defined for positive integers, got {i!r}")

    def rb(k: int) -> int:
        if k <= 1:
            return 0
        bits = k.bit_length()
        return bits + rb(bits - 1)

    return 1 + rb(i)


def elias_period_bound(c: int) -> float:
    """Theorem 4.2 period bound for a node colored ``c``:
    ``2^{1 + log* c} · φ(c)``.
    """
    if c < 1:
        raise ValueError(f"colors are positive integers, got {c!r}")
    return (2.0 ** (1 + log_star(c))) * phi_int(c)


def reciprocal_sum(f: Callable[[int], float], colors: Iterable[int]) -> float:
    """Compute ``Σ_{c in colors} 1 / f(c)``.

    This is the quantity constrained by Theorem 4.1: for a feasible
    color-based schedule in which color ``c`` repeats every ``f(c)``
    holidays, the reciprocals must sum to at most 1 over any set of colors
    that co-exist in the schedule.
    """
    total = 0.0
    for c in colors:
        value = f(c)
        if value <= 0:
            raise ValueError(f"f({c}) = {value} must be positive")
        total += 1.0 / value
    return total


def reciprocal_sum_partial(f: Callable[[int], float], max_color: int) -> List[float]:
    """Prefix sums ``[Σ_{c=1}^{k} 1/f(c) for k in 1..max_color]``.

    Used by experiment E2 to locate the color count at which a candidate
    period function ``f`` becomes infeasible (prefix sum exceeding 1).
    """
    if max_color < 1:
        raise ValueError("max_color must be >= 1")
    sums: List[float] = []
    running = 0.0
    for c in range(1, max_color + 1):
        value = f(c)
        if value <= 0:
            raise ValueError(f"f({c}) = {value} must be positive")
        running += 1.0 / value
        sums.append(running)
    return sums


def condensation_feasible(f: Callable[[int], float], max_color: int, budget: float = 1.0) -> Tuple[bool, int]:
    """Check whether ``Σ_{c=1}^{max_color} 1/f(c) <= budget``.

    Returns ``(feasible, first_violation)`` where ``first_violation`` is the
    smallest color count at which the prefix sum exceeds ``budget`` (or 0 if
    it never does within ``max_color``).  Period functions that overflow a
    float (e.g. ``2^c`` for large ``c``) are treated as infinite — their
    reciprocal contributes nothing to the sum.
    """
    running = 0.0
    for c in range(1, max_color + 1):
        try:
            value = f(c)
        except OverflowError:
            continue
        if value != value or value == float("inf"):
            continue
        running += 1.0 / value
        if running > budget:
            return False, c
    return True, 0


def minimal_divergent_profile(max_color: int, scale: float = 1.0) -> List[float]:
    """Return ``[scale · φ(c) for c in 1..max_color]``.

    The Cauchy condensation test says ``Σ 1/(c log c log log c ...)``
    diverges, so *any* constant multiple of ``φ`` eventually violates the
    ``Σ 1/f(c) ≤ 1`` constraint — but only extremely slowly.  The experiment
    demonstrates that candidate period functions asymptotically smaller than
    ``φ`` blow through the budget at small color counts while ``φ``-scaled
    profiles stay near the boundary, matching the Ω(φ(c)) lower bound.
    """
    if max_color < 1:
        raise ValueError("max_color must be >= 1")
    return [scale * phi_int(c) for c in range(1, max_color + 1)]

"""Schedule validation and bound certification.

Three levels of checking are provided:

1. **Legality** — every holiday's happy set is an independent set of the
   conflict graph and only mentions known nodes
   (:func:`check_independent_sets`).
2. **Bound certification** — every node's measured ``mul`` is within a
   claimed per-node bound such as ``deg(p)+1`` or ``2^{⌈log(d+1)⌉}``
   (:func:`certify_local_bound`), which is how the benchmark harness turns
   the paper's theorems into pass/fail assertions.
3. **Periodicity certification** — a schedule that claims to be perfectly
   periodic indeed shows a constant inter-appearance gap equal to the
   advertised period for every node (:func:`certify_periodicity`).

Like the metric suite, every check runs on either engine: the bit-parallel
:class:`~repro.core.trace.TraceMatrix` (default), where legality becomes one
adjacency-masked column test per edge (an elementwise AND of two rows) and
bound/periodicity certification reuses the matrix's run-length queries, or
the ``backend="sets"`` frozenset reference that walks every holiday.  A
pre-built ``trace=`` can be shared across checks and with the metric suite.

Execution knobs travel on one :class:`~repro.core.config.EngineConfig`
(``config=``); the historical ``backend=``/``mode=``/``chunk=``/``jobs=``
keywords remain as a deprecated shim (one :class:`DeprecationWarning` per
call).  Every check honours the horizon representation
(``horizon_mode="dense"`` / ``"stream"`` / ``"auto"``): on a
:class:`~repro.core.trace.StreamedTrace`
the legality test becomes per-chunk edge row-ANDs with boundary state, and
``fail_fast=True`` stops the stream at the first chunk containing a
violation — later chunks are never materialised.

The ``trace=`` parameter also accepts a
:class:`~repro.core.trace.TraceBatch` member view: the view answers the
same queries from the batch's one stacked scan (its per-edge legality pass
already covered every member), so a batched experiment run validates each
cell through this module unchanged and produces identical violation lists.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

from repro.core.config import EngineConfig, coerce_config
from repro.core.metrics import HappinessTrace, ScheduleLike, TraceLike, build_trace, materialize
from repro.core.problem import ConflictGraph, Node
from repro.core.schedule import Schedule
from repro.core.trace import StreamedTrace, TraceMatrix

__all__ = [
    "Violation",
    "ValidationReport",
    "check_independent_sets",
    "certify_local_bound",
    "certify_periodicity",
    "validate_schedule",
]


@dataclass(frozen=True)
class Violation:
    """A single validation failure."""

    kind: str
    node: Optional[Node]
    holiday: Optional[int]
    detail: str

    def __str__(self) -> str:  # pragma: no cover - human-facing formatting
        parts = [self.kind]
        if self.node is not None:
            parts.append(f"node={self.node!r}")
        if self.holiday is not None:
            parts.append(f"holiday={self.holiday}")
        parts.append(self.detail)
        return " ".join(parts)


@dataclass
class ValidationReport:
    """Outcome of a validation run: a (possibly empty) list of violations."""

    checked_holidays: int
    violations: List[Violation] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        """True when no violations were found."""
        return not self.violations

    def raise_if_failed(self) -> None:
        """Raise :class:`AssertionError` summarising the violations, if any."""
        if self.violations:
            lines = "\n".join(str(v) for v in self.violations[:20])
            more = "" if len(self.violations) <= 20 else f"\n... and {len(self.violations) - 20} more"
            raise AssertionError(
                f"schedule validation failed with {len(self.violations)} violation(s):\n{lines}{more}"
            )

    def merge(self, other: "ValidationReport") -> "ValidationReport":
        """Combine two reports (max of horizons, concatenated violations)."""
        return ValidationReport(
            checked_holidays=max(self.checked_holidays, other.checked_holidays),
            violations=self.violations + other.violations,
        )


def check_independent_sets(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    *,
    config: Optional[EngineConfig] = None,
) -> ValidationReport:
    """Verify that every holiday in the prefix schedules an independent set.

    On the trace engine this is one adjacency-masked column test per edge —
    ``row(u) & row(v)`` flags every holiday at which two in-laws host
    simultaneously — instead of a per-holiday membership scan; on the
    streaming engine the row-ANDs run chunk by chunk (fanned out over
    ``jobs`` worker processes when the schedule kind allows it — the result
    never depends on ``jobs``).  With ``fail_fast`` the report stops at the
    first offending holiday (identically on every engine), a streaming scan
    stops building chunks there, and a parallel streaming scan cancels
    every outstanding chunk block.
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="check_independent_sets",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    if matrix is not None:
        return _check_independent_sets_trace(matrix, graph, horizon, fail_fast=fail_fast)
    sets = materialize(schedule, graph, horizon)
    report = ValidationReport(checked_holidays=horizon)
    node_set = set(graph.nodes())
    for t, happy in enumerate(sets, start=1):
        unknown = [p for p in happy if p not in node_set]
        for p in unknown:
            report.violations.append(
                Violation("unknown-node", p, t, "scheduled node is not in the conflict graph")
            )
        known = [p for p in happy if p in node_set]
        if not graph.is_independent_set(known):
            offending = _find_adjacent_pair(graph, known)
            report.violations.append(
                Violation(
                    "not-independent",
                    None,
                    t,
                    f"adjacent nodes scheduled together: {offending!r}",
                )
            )
        if fail_fast and report.violations:
            break
    return report


def _check_independent_sets_trace(
    matrix: TraceLike, graph: ConflictGraph, horizon: int, fail_fast: bool = False
) -> ValidationReport:
    """Trace-engine legality check, emitting the same violation kinds per
    holiday (unknown nodes first, then one not-independent record) as the
    reference.  The *pair* named in a not-independent detail may differ from
    the reference's choice — the matrix cannot recover the original set
    iteration order, so the first colliding edge (in graph edge order) is
    named as the witness."""
    report = ValidationReport(checked_holidays=horizon)
    # Collisions are computed against the *passed* graph's edge set — a
    # shared trace only guarantees node agreement, not edge agreement.
    if isinstance(matrix, StreamedTrace):
        unknown_by_holiday, collisions = matrix.legality_scan(graph, fail_fast=fail_fast)
    else:
        unknown_by_holiday = {}
        for t, p in matrix.unknown:
            unknown_by_holiday.setdefault(t, []).append(p)
        collisions: Dict[int, List[Tuple[Node, Node]]] = {}
        for u, v in graph.edges():
            for t in matrix.edge_collisions(u, v):
                collisions.setdefault(t, []).append((u, v))
    for t in sorted(set(unknown_by_holiday) | set(collisions)):
        for p in unknown_by_holiday.get(t, ()):
            report.violations.append(
                Violation("unknown-node", p, t, "scheduled node is not in the conflict graph")
            )
        if t in collisions:
            offending = collisions[t][0]
            report.violations.append(
                Violation(
                    "not-independent",
                    None,
                    t,
                    f"adjacent nodes scheduled together: {offending!r}",
                )
            )
        if fail_fast and report.violations:
            break
    return report


def _find_adjacent_pair(graph: ConflictGraph, nodes: Sequence[Node]) -> Optional[Tuple[Node, Node]]:
    selected = set(nodes)
    for p in nodes:
        for q in graph.neighbors(p):
            if q in selected:
                return (p, q)
    return None


def certify_local_bound(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    bound: Callable[[Node], float] | Mapping[Node, float],
    bound_name: str = "bound",
    skip_isolated: bool = False,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> ValidationReport:
    """Check ``mul(p) <= bound(p)`` for every node over the given horizon.

    ``bound`` may be a callable ``node -> value`` or a precomputed mapping.
    ``skip_isolated`` excludes degree-0 nodes (some schedulers legitimately
    never schedule nodes with no conflicts because they can host every
    holiday without coordination; the paper's guarantees are stated for
    nodes that actually have in-laws).
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="certify_local_bound",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    reference = None if matrix is not None else HappinessTrace.from_schedule(schedule, graph, horizon)
    report = ValidationReport(checked_holidays=horizon)
    for p in graph.nodes():
        if skip_isolated and graph.degree(p) == 0:
            continue
        limit = bound[p] if isinstance(bound, Mapping) else bound(p)
        measured = matrix.mul(p) if matrix is not None else reference.mul(p)
        if measured > limit:
            report.violations.append(
                Violation(
                    "bound-exceeded",
                    p,
                    None,
                    f"mul={measured} exceeds {bound_name}={limit} (degree {graph.degree(p)})",
                )
            )
    return report


def certify_periodicity(
    schedule: Schedule,
    horizon: int,
    require_advertised: bool = True,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    *,
    config: Optional[EngineConfig] = None,
) -> ValidationReport:
    """Check that a schedule claiming periodicity really is perfectly periodic.

    For every node with at least two appearances in the horizon the
    inter-appearance gap must be constant; when ``require_advertised`` and
    the schedule advertises :meth:`~repro.core.schedule.Schedule.node_period`,
    the observed period must also equal the advertised one.

    On the trace engines only the *distinct* inter-appearance differences
    are consulted (:meth:`~repro.core.trace.TraceMatrix.distinct_appearance_diffs`),
    which is what lets the streaming engine certify a 10⁸-holiday horizon
    without ever holding the full diff list.
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="certify_periodicity",
    )
    graph = schedule.graph
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    reference = None if matrix is not None else HappinessTrace.from_schedule(schedule, graph, horizon)
    report = ValidationReport(checked_holidays=horizon)
    for p in graph.nodes():
        distinct = (
            matrix.distinct_appearance_diffs(p)
            if matrix is not None
            else sorted(set(reference.inter_appearance_gaps(p)))
        )
        if not distinct:
            continue
        if len(distinct) != 1:
            report.violations.append(
                Violation("aperiodic", p, None, f"inter-appearance gaps vary: {distinct}")
            )
            continue
        if require_advertised and schedule.is_periodic():
            advertised = schedule.node_period(p)
            if advertised is not None and distinct[0] != advertised:
                report.violations.append(
                    Violation(
                        "period-mismatch",
                        p,
                        None,
                        f"observed period {distinct[0]} != advertised {advertised}",
                    )
                )
    return report


def validate_schedule(
    schedule: ScheduleLike,
    graph: ConflictGraph,
    horizon: int,
    bound: Callable[[Node], float] | Mapping[Node, float] | None = None,
    bound_name: str = "bound",
    check_periodic: bool = False,
    skip_isolated: bool = False,
    backend: Optional[str] = None,
    trace: Optional[TraceLike] = None,
    mode: Optional[str] = None,
    chunk: Optional[int] = None,
    jobs: Optional[int] = None,
    fail_fast: bool = False,
    *,
    config: Optional[EngineConfig] = None,
) -> ValidationReport:
    """Run legality + optional bound + optional periodicity checks in one call.

    On a non-``"sets"`` backend the occupancy trace (dense matrix or
    streaming engine, per ``mode``) is built at most once and shared by all
    three checks (or taken from ``trace=`` when the caller already built it
    for the metric suite).  ``fail_fast`` applies to the legality check only
    — bound and periodicity certification always cover every node.
    """
    config = coerce_config(
        config, {"backend": backend, "mode": mode, "chunk": chunk, "jobs": jobs},
        caller="validate_schedule",
    )
    matrix = build_trace(schedule, graph, horizon, trace=trace, config=config)
    report = check_independent_sets(
        schedule, graph, horizon, trace=matrix, fail_fast=fail_fast, config=config
    )
    if bound is not None:
        report = report.merge(
            certify_local_bound(
                schedule,
                graph,
                horizon,
                bound,
                bound_name=bound_name,
                skip_isolated=skip_isolated,
                trace=matrix,
                config=config,
            )
        )
    if check_periodic and isinstance(schedule, Schedule):
        # The periodicity check runs over schedule.graph's nodes; the trace
        # built on this call's `graph` can only be shared when the two agree
        # (certify_periodicity builds its own otherwise).
        shareable = matrix is not None and matrix.graph.nodes() == schedule.graph.nodes()
        report = report.merge(
            certify_periodicity(
                schedule,
                horizon,
                trace=matrix if shareable else None,
                config=config,
            )
        )
    return report

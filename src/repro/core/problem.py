"""The Holiday Gathering Problem's basic objects.

Terminology follows Section 2 of the paper:

* the **conflict graph** ``G = (P, E)`` has one node per *parent pair* and an
  edge between two parents whose children are in a relationship (in-laws);
* a **family holiday gathering** (a *gathering*) is an orientation of ``E``;
  a parent is **happy** in a gathering when it is a sink (all incident edges
  point toward it) — the happy parents of any gathering form an independent
  set of ``G``;
* a parent is **satisfied** when at least one incident edge points toward it
  (Appendix A.3).

:class:`ConflictGraph` wraps a :class:`networkx.Graph` and adds the
validation and convenience queries the schedulers rely on (degrees, the
"child" edge view used by the satisfaction algorithms, deterministic node
ordering).  :class:`Gathering` realises Definition 2.1 literally as an edge
orientation so that the happiness/satisfaction predicates can be exercised
exactly as stated; schedulers normally work with the derived happy *sets*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, FrozenSet, Hashable, Iterable, Iterator, List, Mapping, Sequence, Tuple

import networkx as nx

__all__ = ["Node", "Edge", "ConflictGraph", "Gathering", "orientation_towards"]

Node = Hashable
Edge = Tuple[Node, Node]


class ConflictGraph:
    """An undirected conflict graph of parents (nodes) and in-law relations (edges).

    The wrapper enforces the structural assumptions of the paper:

    * simple graph — no self-loops (a couple's two parent pairs are distinct)
      and no parallel edges (multiple children married across the same two
      families only simplify the problem, per Section 2, so they collapse);
    * hashable node identifiers with a deterministic iteration order (sorted
      by ``repr`` when heterogeneous), so runs are reproducible.

    Args:
        edges: iterable of ``(u, v)`` pairs.
        nodes: optional iterable of isolated or additional nodes.
        name: optional label used in benchmark tables.
    """

    def __init__(
        self,
        edges: Iterable[Edge] = (),
        nodes: Iterable[Node] = (),
        name: str = "conflict-graph",
    ) -> None:
        graph = nx.Graph(name=name)
        graph.add_nodes_from(nodes)
        for u, v in edges:
            if u == v:
                raise ValueError(f"self-loop {u!r} is not a valid in-law relation")
            graph.add_edge(u, v)
        self._graph = graph
        self.name = name
        self._order: List[Node] = self._stable_order(graph.nodes())
        self._index: Dict[Node, int] = {p: i for i, p in enumerate(self._order)}
        # derived-query caches, invalidated by the mutation methods below;
        # hot loops (per-edge legality scans, per-node bound checks) hit
        # these thousands of times per run
        self._edge_cache: List[Edge] | None = None
        self._degree_cache: Dict[Node, int] | None = None

    def _invalidate_caches(self) -> None:
        self._edge_cache = None
        self._degree_cache = None

    # -- construction --------------------------------------------------------------
    @staticmethod
    def _stable_order(nodes: Iterable[Node]) -> List[Node]:
        nodes = list(nodes)
        try:
            return sorted(nodes)
        except TypeError:
            return sorted(nodes, key=repr)

    @classmethod
    def from_networkx(cls, graph: nx.Graph, name: str | None = None) -> "ConflictGraph":
        """Build a conflict graph from an existing undirected networkx graph."""
        if graph.is_directed():
            raise ValueError("conflict graphs are undirected")
        if any(u == v for u, v in graph.edges()):
            raise ValueError("conflict graphs cannot contain self-loops")
        return cls(edges=graph.edges(), nodes=graph.nodes(), name=name or graph.name or "conflict-graph")

    @classmethod
    def from_edges(cls, edges: Iterable[Edge], name: str = "conflict-graph") -> "ConflictGraph":
        """Build a conflict graph directly from an edge list."""
        return cls(edges=edges, name=name)

    @classmethod
    def from_couples(
        cls,
        couples: Iterable[Tuple[Node, Node]],
        parents: Iterable[Node] = (),
        name: str = "society",
    ) -> "ConflictGraph":
        """Build a conflict graph from the family story.

        ``couples`` lists pairs ``(parent_a, parent_b)`` meaning a child of
        family ``parent_a`` is in a relationship with a child of family
        ``parent_b`` — each such couple is one conflict edge.  ``parents``
        may list families with no married children (isolated nodes).
        """
        return cls(edges=couples, nodes=parents, name=name)

    def to_networkx(self) -> nx.Graph:
        """Return a *copy* of the underlying networkx graph."""
        return self._graph.copy()

    def copy(self, name: str | None = None) -> "ConflictGraph":
        """Return an independent copy of this conflict graph."""
        return ConflictGraph(edges=self.edges(), nodes=self.nodes(), name=name or self.name)

    # -- queries -------------------------------------------------------------------
    def __len__(self) -> int:
        return self._graph.number_of_nodes()

    def __contains__(self, node: Node) -> bool:
        return node in self._graph

    def __iter__(self) -> Iterator[Node]:
        return iter(self._order)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"ConflictGraph(name={self.name!r}, n={self.num_nodes()}, "
            f"m={self.num_edges()}, max_degree={self.max_degree()})"
        )

    def nodes(self) -> List[Node]:
        """All parents in a deterministic order."""
        return list(self._order)

    def edges(self) -> List[Edge]:
        """All in-law edges (each once, as stored by networkx)."""
        if self._edge_cache is None:
            self._edge_cache = list(self._graph.edges())
        return list(self._edge_cache)

    def num_nodes(self) -> int:
        """Number of parents ``|P|``."""
        return self._graph.number_of_nodes()

    def num_edges(self) -> int:
        """Number of conflict edges ``|E|``."""
        return self._graph.number_of_edges()

    def degree(self, node: Node) -> int:
        """Degree (number of in-law families) of ``node``."""
        if self._degree_cache is None:
            self._degree_cache = {p: int(d) for p, d in self._graph.degree()}
        try:
            return self._degree_cache[node]
        except KeyError:
            # fall through for networkx's error reporting on unknown nodes
            return int(self._graph.degree(node))

    def degrees(self) -> Dict[Node, int]:
        """``{node: degree}`` for every parent."""
        if self._degree_cache is None:
            self._degree_cache = {p: int(d) for p, d in self._graph.degree()}
        return dict(self._degree_cache)

    def neighbors(self, node: Node) -> List[Node]:
        """Neighbors (in-law families) of ``node`` in deterministic order."""
        return self._stable_order(self._graph.neighbors(node))

    def max_degree(self) -> int:
        """The global maximum degree ``Δ`` (0 for an empty or edgeless graph)."""
        if self.num_nodes() == 0:
            return 0
        return max(self.degrees().values(), default=0)

    def index_of(self, node: Node) -> int:
        """Deterministic integer index of ``node`` (useful for array-backed code)."""
        return self._index[node]

    def has_edge(self, u: Node, v: Node) -> bool:
        """True when families ``u`` and ``v`` are in-laws."""
        return self._graph.has_edge(u, v)

    def incident_edges(self, node: Node) -> List[Edge]:
        """``E_p``: the conflict edges touching ``node``."""
        return [(node, q) for q in self.neighbors(node)]

    def is_independent_set(self, nodes: Iterable[Node]) -> bool:
        """True when no two of the given nodes share a conflict edge."""
        selected = list(nodes)
        unknown = [p for p in selected if p not in self._graph]
        if unknown:
            raise ValueError(f"nodes {unknown!r} are not in the conflict graph")
        selected_set = set(selected)
        for p in selected_set:
            for q in self._graph.neighbors(p):
                if q in selected_set:
                    return False
        return True

    def subgraph(self, nodes: Iterable[Node], name: str | None = None) -> "ConflictGraph":
        """Induced subgraph on ``nodes`` as a new :class:`ConflictGraph`."""
        sub = self._graph.subgraph(list(nodes)).copy()
        return ConflictGraph.from_networkx(sub, name=name or f"{self.name}-sub")

    # -- mutation (used by the dynamic setting of Section 6) ------------------------
    def add_edge(self, u: Node, v: Node) -> None:
        """Add a new in-law relation (a marriage event in the dynamic setting)."""
        if u == v:
            raise ValueError(f"self-loop {u!r} is not a valid in-law relation")
        self._graph.add_edge(u, v)
        self._invalidate_caches()
        for node in (u, v):
            if node not in self._index:
                self._order.append(node)
                self._index[node] = len(self._order) - 1

    def remove_edge(self, u: Node, v: Node) -> None:
        """Remove an in-law relation (a divorce event in the dynamic setting)."""
        if not self._graph.has_edge(u, v):
            raise KeyError(f"edge ({u!r}, {v!r}) is not in the conflict graph")
        self._graph.remove_edge(u, v)
        self._invalidate_caches()

    def add_node(self, node: Node) -> None:
        """Add an isolated family."""
        if node not in self._graph:
            self._graph.add_node(node)
            self._invalidate_caches()
            self._order.append(node)
            self._index[node] = len(self._order) - 1


@dataclass(frozen=True)
class Gathering:
    """A single holiday gathering: an orientation of the conflict edges.

    ``orientation[(u, v)] == v`` means the edge is directed *toward* ``v``
    (family ``v`` receives that couple for this holiday).  Every conflict
    edge must be assigned exactly one direction (Definition 2.1).
    """

    graph: ConflictGraph
    orientation: Mapping[Edge, Node]

    def __post_init__(self) -> None:
        edges = self.graph.edges()
        oriented = dict(self.orientation)
        normalized: Dict[Edge, Node] = {}
        for u, v in edges:
            if (u, v) in oriented:
                target = oriented[(u, v)]
            elif (v, u) in oriented:
                target = oriented[(v, u)]
            else:
                raise ValueError(f"edge ({u!r}, {v!r}) has no orientation")
            if target not in (u, v):
                raise ValueError(f"edge ({u!r}, {v!r}) oriented toward non-endpoint {target!r}")
            normalized[(u, v)] = target
        extra = set()
        for key in oriented:
            u, v = key
            if not self.graph.has_edge(u, v):
                extra.add(key)
        if extra:
            raise ValueError(f"orientation mentions non-edges: {sorted(map(repr, extra))}")
        object.__setattr__(self, "orientation", normalized)

    def direction(self, u: Node, v: Node) -> Node:
        """Return the endpoint the edge ``{u, v}`` points toward."""
        if (u, v) in self.orientation:
            return self.orientation[(u, v)]
        if (v, u) in self.orientation:
            return self.orientation[(v, u)]
        raise KeyError(f"edge ({u!r}, {v!r}) is not in the gathering")

    def is_happy(self, node: Node) -> bool:
        """Definition 2.1: ``node`` is happy iff it is a sink of the orientation."""
        for u, v in self.graph.incident_edges(node):
            if self.direction(u, v) != node:
                return False
        return True

    def is_satisfied(self, node: Node) -> bool:
        """Definition A.1: ``node`` is satisfied iff some incident edge points to it.

        Isolated nodes are vacuously satisfied (they host their unmarried
        children every holiday).
        """
        incident = self.graph.incident_edges(node)
        if not incident:
            return True
        return any(self.direction(u, v) == node for u, v in incident)

    def happy_set(self) -> FrozenSet[Node]:
        """All happy parents of this gathering — always an independent set."""
        return frozenset(p for p in self.graph.nodes() if self.is_happy(p))

    def satisfied_set(self) -> FrozenSet[Node]:
        """All satisfied parents of this gathering."""
        return frozenset(p for p in self.graph.nodes() if self.is_satisfied(p))


def orientation_towards(graph: ConflictGraph, happy_nodes: Iterable[Node]) -> Gathering:
    """Construct a gathering in which every node of ``happy_nodes`` is a sink.

    ``happy_nodes`` must be an independent set (otherwise two adjacent sinks
    would be required, which is impossible); edges not incident to any happy
    node are oriented toward the lexicographically smaller endpoint so the
    construction is deterministic.  Nodes outside ``happy_nodes`` whose
    neighbours are all also unselected may incidentally end up as sinks —
    the guarantee is ``happy_nodes ⊆ gathering.happy_set()``, which is all
    the schedulers rely on.

    This realises the standard conversion used implicitly throughout the
    paper: a schedule of independent sets *is* a schedule of gatherings.
    """
    happy = set(happy_nodes)
    if not graph.is_independent_set(happy):
        raise ValueError("happy_nodes must form an independent set of the conflict graph")
    orientation: Dict[Edge, Node] = {}
    for u, v in graph.edges():
        if u in happy:
            orientation[(u, v)] = u
        elif v in happy:
            orientation[(u, v)] = v
        else:
            orientation[(u, v)] = min(u, v, key=repr)
    return Gathering(graph=graph, orientation=orientation)

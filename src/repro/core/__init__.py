"""Core objects of the Holiday Gathering Problem.

This subpackage holds the paper's combinatorial objects (conflict graphs,
gatherings, schedules), the quality metric (maximum unhappiness length), the
validation/certification utilities and the iterated-logarithm machinery
behind the Section 4 bounds.
"""

from repro.core.problem import ConflictGraph, Gathering, Node, orientation_towards
from repro.core.schedule import (
    ExplicitSchedule,
    GeneratorSchedule,
    PeriodicSchedule,
    Schedule,
    SlotAssignment,
)
from repro.core.config import EngineConfig, ResolvedEngine
from repro.core.trace import TraceMatrix, numpy_available, resolve_backend
from repro.core.metrics import (
    HappinessTrace,
    ScheduleReport,
    build_trace,
    evaluate_schedule,
    happiness_rates,
    jain_fairness_index,
    max_unhappiness_lengths,
    normalized_gaps,
    observed_periods,
    unhappiness_gaps,
)
from repro.core.validation import (
    ValidationReport,
    Violation,
    certify_local_bound,
    certify_periodicity,
    check_independent_sets,
    validate_schedule,
)
from repro.core.bounds import (
    bound_table,
    degree_plus_one_bound,
    delta_plus_one_bound,
    elias_color_bound,
    elias_color_bound_exact,
    fair_share_bound,
    periodic_degree_bound,
    periodic_degree_bound_value,
)
from repro.core.phi import (
    condensation_feasible,
    elias_period_bound,
    log_star,
    phi,
    phi_int,
    reciprocal_sum,
    reciprocal_sum_partial,
    rho_ceil,
)

__all__ = [
    "ConflictGraph",
    "Gathering",
    "Node",
    "orientation_towards",
    "Schedule",
    "PeriodicSchedule",
    "ExplicitSchedule",
    "GeneratorSchedule",
    "SlotAssignment",
    "TraceMatrix",
    "EngineConfig",
    "ResolvedEngine",
    "numpy_available",
    "resolve_backend",
    "build_trace",
    "HappinessTrace",
    "ScheduleReport",
    "evaluate_schedule",
    "max_unhappiness_lengths",
    "unhappiness_gaps",
    "observed_periods",
    "happiness_rates",
    "normalized_gaps",
    "jain_fairness_index",
    "ValidationReport",
    "Violation",
    "check_independent_sets",
    "certify_local_bound",
    "certify_periodicity",
    "validate_schedule",
    "bound_table",
    "degree_plus_one_bound",
    "delta_plus_one_bound",
    "periodic_degree_bound",
    "periodic_degree_bound_value",
    "elias_color_bound",
    "elias_color_bound_exact",
    "fair_share_bound",
    "phi",
    "phi_int",
    "log_star",
    "rho_ceil",
    "elias_period_bound",
    "reciprocal_sum",
    "reciprocal_sum_partial",
    "condensation_feasible",
]

"""Theoretical per-node bounds from the paper, as reusable bound functions.

Each function returns a ``{node: bound}`` mapping (or a single value) so it
can be fed directly to :func:`repro.core.validation.certify_local_bound` and
to the benchmark tables that print "measured vs. paper bound" columns.

Summary of the bounds reproduced:

=====================  ==================================================
Paper result            Bound on the gap / period of node ``p``
=====================  ==================================================
Δ+1 round-robin         ``Δ + 1`` (global — the strawman of Section 1)
Theorem 3.1             ``deg(p) + 1`` (aperiodic, Phased Greedy)
Theorem 4.2             ``2^{ρ(c_p)} ≤ 2^{1+log* c_p}·φ(c_p)`` (Elias omega)
Theorem 5.3             ``2^{⌈log(deg(p)+1)⌉} ≤ 2·deg(p)`` (degree-bound)
First-come-first-grab   expected ``deg(p) + 1`` (the fair-share landmark)
=====================  ==================================================
"""

from __future__ import annotations

from typing import Callable, Dict, Mapping

from repro.core.phi import elias_period_bound, rho_ceil
from repro.core.problem import ConflictGraph, Node
from repro.utils.math import ceil_log2

__all__ = [
    "delta_plus_one_bound",
    "degree_plus_one_bound",
    "periodic_degree_bound",
    "periodic_degree_bound_value",
    "elias_color_bound",
    "elias_color_bound_exact",
    "fair_share_bound",
    "bound_table",
]


def delta_plus_one_bound(graph: ConflictGraph) -> Dict[Node, int]:
    """The global ``Δ + 1`` bound achieved by naive round-robin coloring."""
    delta = graph.max_degree()
    return {p: delta + 1 for p in graph.nodes()}


def degree_plus_one_bound(graph: ConflictGraph) -> Dict[Node, int]:
    """Theorem 3.1: ``mul(p) ≤ deg(p) + 1`` for the Phased Greedy scheduler."""
    return {p: graph.degree(p) + 1 for p in graph.nodes()}


def periodic_degree_bound_value(degree: int) -> int:
    """Theorem 5.3 period for a node of degree ``d``: ``2^{⌈log(d+1)⌉}``.

    This is at most ``2d`` for ``d ≥ 1`` and equals 1 for ``d = 0``
    (an isolated node can host every holiday).
    """
    if degree < 0:
        raise ValueError(f"degree must be non-negative, got {degree!r}")
    return 1 << ceil_log2(degree + 1)


def periodic_degree_bound(graph: ConflictGraph) -> Dict[Node, int]:
    """Theorem 5.3: ``{node: 2^{⌈log(deg+1)⌉}}`` — the exact periods of Section 5."""
    return {p: periodic_degree_bound_value(graph.degree(p)) for p in graph.nodes()}


def elias_color_bound_exact(color: int) -> int:
    """The exact period of the Section 4 scheduler for a node colored ``c``: ``2^{ρ(c)}``."""
    return 1 << rho_ceil(color)


def elias_color_bound(color: int) -> float:
    """Theorem 4.2's closed-form bound ``2^{1+log* c}·φ(c)`` (≥ the exact period)."""
    return elias_period_bound(color)


def fair_share_bound(graph: ConflictGraph) -> Dict[Node, int]:
    """The "first come first grab" landmark: expected hosting interval ``deg(p)+1``.

    Not a worst-case guarantee — used as the normalisation baseline in E5/E10.
    """
    return {p: graph.degree(p) + 1 for p in graph.nodes()}


def bound_table(
    graph: ConflictGraph, coloring: Mapping[Node, int] | None = None
) -> Dict[Node, Dict[str, float]]:
    """All paper bounds side by side for every node.

    When ``coloring`` is provided the Elias bounds are included (they are a
    function of the node's color, not its degree).
    """
    delta = graph.max_degree()
    table: Dict[Node, Dict[str, float]] = {}
    for p in graph.nodes():
        d = graph.degree(p)
        row: Dict[str, float] = {
            "degree": float(d),
            "delta_plus_one": float(delta + 1),
            "thm31_degree_plus_one": float(d + 1),
            "thm53_periodic_degree": float(periodic_degree_bound_value(d)),
            "fair_share": float(d + 1),
        }
        if coloring is not None:
            c = coloring[p]
            row["color"] = float(c)
            row["thm42_exact_period"] = float(elias_color_bound_exact(c))
            row["thm42_closed_form"] = float(elias_color_bound(c))
        table[p] = row
    return table

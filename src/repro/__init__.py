"""repro — a reproduction of "The Family Holiday Gathering Problem or Fair and
Periodic Scheduling of Independent Sets" (Amir, Kapah, Kopelowitz, Naor, Porat).

The package implements the paper's combinatorial problem, its three
scheduling algorithms with their per-node guarantees, the substrates they
depend on (prefix-free codes, graph colorings, a LOCAL-model simulator,
bipartite matching) and an experiment harness that re-derives every claimed
bound empirically.

Quick start::

    from repro import ConflictGraph, DegreePeriodicScheduler, Session

    graph = ConflictGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 0), (1, 3)])
    session = Session(graph)                       # config=EngineConfig(...)
    schedule = DegreePeriodicScheduler().build(graph)
    report = session.evaluate(schedule, horizon=64)
    print(report.muls)                  # max unhappiness per family
    print(session.validate(schedule, horizon=64).ok)

See ``examples/`` for end-to-end scenarios and ``benchmarks/`` for the
experiment suite documented in EXPERIMENTS.md.
"""

from repro.api import Session, SessionReport, SessionTraceCache
from repro.core import (
    ConflictGraph,
    EngineConfig,
    ExplicitSchedule,
    Gathering,
    GeneratorSchedule,
    HappinessTrace,
    PeriodicSchedule,
    Schedule,
    ScheduleReport,
    SlotAssignment,
    TraceMatrix,
    ValidationReport,
    certify_local_bound,
    certify_periodicity,
    check_independent_sets,
    degree_plus_one_bound,
    delta_plus_one_bound,
    elias_color_bound,
    elias_color_bound_exact,
    evaluate_schedule,
    log_star,
    max_unhappiness_lengths,
    observed_periods,
    orientation_towards,
    periodic_degree_bound,
    phi,
    rho_ceil,
    validate_schedule,
)
from repro.algorithms import (
    ColorPeriodicScheduler,
    DegreePeriodicScheduler,
    DynamicColorBoundScheduler,
    FirstComeFirstGrabScheduler,
    GraphEvent,
    PhasedGreedyScheduler,
    RoundRobinColorScheduler,
    Scheduler,
    SequentialScheduler,
    available_schedulers,
    get_scheduler,
)
from repro.coding import EliasDeltaCode, EliasGammaCode, EliasOmegaCode
from repro.coloring import (
    Coloring,
    distributed_deg_plus_one_coloring,
    dsatur_coloring,
    greedy_coloring,
    sequential_slot_assignment,
)
from repro.graphs import random_society

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # core
    "ConflictGraph",
    "EngineConfig",
    "Session",
    "SessionReport",
    "SessionTraceCache",
    "Gathering",
    "orientation_towards",
    "Schedule",
    "PeriodicSchedule",
    "ExplicitSchedule",
    "GeneratorSchedule",
    "SlotAssignment",
    "HappinessTrace",
    "TraceMatrix",
    "ScheduleReport",
    "ValidationReport",
    "evaluate_schedule",
    "max_unhappiness_lengths",
    "observed_periods",
    "check_independent_sets",
    "certify_local_bound",
    "certify_periodicity",
    "validate_schedule",
    "degree_plus_one_bound",
    "delta_plus_one_bound",
    "periodic_degree_bound",
    "elias_color_bound",
    "elias_color_bound_exact",
    "phi",
    "log_star",
    "rho_ceil",
    # algorithms
    "Scheduler",
    "SequentialScheduler",
    "RoundRobinColorScheduler",
    "FirstComeFirstGrabScheduler",
    "PhasedGreedyScheduler",
    "ColorPeriodicScheduler",
    "DegreePeriodicScheduler",
    "DynamicColorBoundScheduler",
    "GraphEvent",
    "available_schedulers",
    "get_scheduler",
    # substrates
    "EliasGammaCode",
    "EliasDeltaCode",
    "EliasOmegaCode",
    "Coloring",
    "greedy_coloring",
    "dsatur_coloring",
    "distributed_deg_plus_one_coloring",
    "sequential_slot_assignment",
    "random_society",
]

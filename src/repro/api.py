"""`repro.api` — the session facade: one graph, one config, one trace.

The three-line happy path for library users::

    from repro.api import Session

    session = Session(graph)                       # config=EngineConfig(...)
    report = session.evaluate(schedule)            # full metric suite
    ok = session.validate(schedule).ok             # legality (+ bounds)

A :class:`Session` binds a conflict graph to an
:class:`~repro.core.config.EngineConfig` and owns the occupancy-trace cache:
the first query against a ``(schedule, horizon)`` pair builds the trace
(dense matrix or streaming engine, per the config), and every later query —
``evaluate``, ``validate``, ``report``, the per-metric helpers — reuses it.
This replaces the manual trace-sharing dance callers used to copy from
``analysis/runner.py`` (build a trace, thread ``trace=`` through every
call); ``run_scheduler`` itself now runs on a session.

Horizons default to the session's :class:`~repro.analysis.engine.HorizonPolicy`
(the same degree rule ``run_scheduler`` uses), so ``session.evaluate(s)``
with no horizon observes a window long enough for the paper bounds to show.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Tuple

from repro.analysis.engine import HorizonPolicy
from repro.core.config import DEFAULT_CONFIG, EngineConfig
from repro.core.metrics import (
    ScheduleLike,
    ScheduleReport,
    TraceLike,
    build_trace,
    evaluate_schedule,
    happiness_rates,
    max_unhappiness_lengths,
    observed_periods,
    unhappiness_gaps,
)
from repro.core.problem import ConflictGraph, Node
from repro.core.validation import ValidationReport, validate_schedule

__all__ = ["Session", "SessionReport", "SessionTraceCache", "EngineConfig", "open_store"]


def open_store(path):
    """Open (creating if missing) a :class:`~repro.io.store.ResultStore`.

    The facade spelling of the persistent result store — the cross-campaign
    cell cache the experiment engine consults before executing (see
    ``docs/storage.md``).  Usable as a context manager::

        from repro.api import open_store

        with open_store("results.sqlite") as store:
            hits = store.query(workload="small/path")

    Note the store is an I/O concern, deliberately *not* a :class:`Session`
    or :class:`EngineConfig` field: attaching one never changes what is
    computed, only whether a computation can be skipped.
    """
    from repro.io.store import ResultStore

    return ResultStore(path)


class SessionTraceCache:
    """The default trace cache one :class:`Session` owns privately.

    Extracted from ``Session`` (which used to inline the dictionary) so the
    cache is an *object* sessions can share: pass the same instance as
    ``traces=`` to several sessions and they reuse each other's builds.  Any
    object with the same ``get_or_build``/``clear`` surface works — the
    serving layer (:mod:`repro.serve`) substitutes a content-addressed,
    byte-budgeted :class:`~repro.serve.cache.TraceCache` here so traces are
    shared across *requests*, not just across calls within one session.

    Keys are ``(id(schedule), id(graph), horizon, config)`` — schedule
    *identity*, the cheap exact notion a library session wants (no hashing
    of schedule content); the entry pins the schedule and graph so a dead
    object's recycled ``id()`` can never serve the wrong trace.  Unbounded:
    one entry per distinct key until :meth:`clear`.
    """

    def __init__(self) -> None:
        self._entries: Dict[Tuple[int, int, int, EngineConfig], Tuple[object, object, Optional[TraceLike]]] = {}

    def get_or_build(
        self,
        schedule: ScheduleLike,
        graph: ConflictGraph,
        horizon: int,
        config: EngineConfig,
        build: Callable[[], Optional[TraceLike]],
    ) -> Optional[TraceLike]:
        """The cached trace for this query, calling ``build()`` on a miss."""
        key = (id(schedule), id(graph), horizon, config)
        if key not in self._entries:
            self._entries[key] = (schedule, graph, build())
        return self._entries[key][2]

    def clear(self) -> None:
        """Drop every entry (and the schedules/graphs they pin)."""
        self._entries.clear()

    def __len__(self) -> int:
        return len(self._entries)


@dataclass
class SessionReport:
    """Everything :meth:`Session.report` measures about one schedule."""

    report: ScheduleReport
    validation: ValidationReport
    horizon: int

    @property
    def ok(self) -> bool:
        """True when no validation violations were found."""
        return self.validation.ok

    def summary(self) -> Dict[str, float]:
        """The metric summary plus the legality verdict, table-ready."""
        out = dict(self.report.summary())
        out["legal"] = 1.0 if self.validation.ok else 0.0
        return out


class Session:
    """A graph + an :class:`EngineConfig`, with a shared trace per schedule.

    Parameters:
        graph: the conflict graph every query runs against.
        config: the execution knobs (default: all-``auto``
            :data:`~repro.core.config.DEFAULT_CONFIG`).
        policy: how long to observe when a call gives no explicit horizon
            (default :class:`~repro.analysis.engine.HorizonPolicy`).
        traces: the trace cache (default: a private
            :class:`SessionTraceCache`).  Pass a shared instance to make
            traces reusable *across* sessions — this is how the serving
            layer keeps one content-addressed cache warm behind many
            concurrent request sessions.

    The default cache is keyed by schedule *identity* and horizon:
    evaluating and validating the same schedule object over the same horizon
    builds the occupancy trace exactly once (asserted by
    ``tests/api/test_session.py``).  It only grows — one trace per
    ``(schedule, horizon)`` pair, each pinning its schedule — so a session
    sweeping many schedules should call :meth:`clear` between batches.
    Under ``backend="sets"`` there is no trace to share and every query
    walks the frozenset reference — the facade still works, just without
    the reuse.
    """

    def __init__(
        self,
        graph: ConflictGraph,
        config: Optional[EngineConfig] = None,
        policy: Optional[HorizonPolicy] = None,
        traces: Optional[SessionTraceCache] = None,
    ) -> None:
        self.graph = graph
        self.config = config if config is not None else DEFAULT_CONFIG
        self.policy = policy if policy is not None else HorizonPolicy()
        self.traces = traces if traces is not None else SessionTraceCache()

    @property
    def _traces(self) -> Dict:
        """The raw entries of a default cache (kept for introspection)."""
        return getattr(self.traces, "_entries", {})

    # -- plumbing ------------------------------------------------------------
    def resolve_horizon(
        self,
        horizon: Optional[int] = None,
        bound: Callable[[Node], float] | Mapping[Node, float] | None = None,
    ) -> int:
        """An explicit horizon, or the policy's choice for this graph.

        When a per-node ``bound`` is being certified, the policy extends the
        window so the bound can actually be witnessed (the same rule
        ``run_scheduler`` applies) — a degree-rule window alone can be too
        short to observe a violation of a larger claimed bound.
        """
        if horizon is not None:
            return horizon
        bound_fn = None
        if bound is not None:
            bound_fn = bound if callable(bound) else bound.__getitem__
        return self.policy.resolve(self.graph, bound_fn)

    def clear(self) -> None:
        """Drop every cached trace (and the schedules they pin).

        The cache holds a strong reference to each queried schedule and its
        trace, so a long-lived session sweeping many schedules grows by one
        trace per ``(schedule, horizon)`` pair — call this between batches
        to release them.  On a *shared* cache this clears the whole cache,
        for every session using it.
        """
        self.traces.clear()

    def trace(
        self, schedule: ScheduleLike, horizon: Optional[int] = None
    ) -> Optional[TraceLike]:
        """The shared trace for ``(schedule, horizon)``, built on first use.

        Returns ``None`` under ``backend="sets"`` (the reference engine has
        no trace object).
        """
        horizon = self.resolve_horizon(horizon)
        return self.traces.get_or_build(
            schedule,
            self.graph,
            horizon,
            self.config,
            lambda: build_trace(schedule, self.graph, horizon, config=self.config),
        )

    # -- the facade ----------------------------------------------------------
    def evaluate(
        self,
        schedule: ScheduleLike,
        horizon: Optional[int] = None,
        name: str = "schedule",
    ) -> ScheduleReport:
        """The full metric suite (mul, periods, rates, fairness) over the
        shared trace."""
        horizon = self.resolve_horizon(horizon)
        return evaluate_schedule(
            schedule, self.graph, horizon, name=name,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def validate(
        self,
        schedule: ScheduleLike,
        horizon: Optional[int] = None,
        bound: Callable[[Node], float] | Mapping[Node, float] | None = None,
        bound_name: str = "bound",
        check_periodic: bool = False,
        skip_isolated: bool = False,
        fail_fast: bool = False,
    ) -> ValidationReport:
        """Legality + optional bound/periodicity checks over the shared trace."""
        horizon = self.resolve_horizon(horizon, bound=bound)
        return validate_schedule(
            schedule, self.graph, horizon,
            bound=bound, bound_name=bound_name,
            check_periodic=check_periodic, skip_isolated=skip_isolated,
            fail_fast=fail_fast,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def report(
        self,
        schedule: ScheduleLike,
        horizon: Optional[int] = None,
        name: str = "schedule",
        **validate_kwargs: object,
    ) -> SessionReport:
        """Evaluate *and* validate in one call, over one trace build."""
        horizon = self.resolve_horizon(horizon, bound=validate_kwargs.get("bound"))
        return SessionReport(
            report=self.evaluate(schedule, horizon, name=name),
            validation=self.validate(schedule, horizon, **validate_kwargs),
            horizon=horizon,
        )

    def run(self, scheduler, seed: int = 0, horizon: Optional[int] = None, **kwargs):
        """Build a scheduler's schedule and measure it under this session's
        config — :func:`repro.analysis.runner.run_scheduler` with the
        session's graph, config and policy filled in.  Returns a
        :class:`~repro.analysis.runner.RunOutcome`."""
        from repro.analysis.runner import run_scheduler

        return run_scheduler(
            scheduler, self.graph, horizon=horizon, seed=seed,
            policy=self.policy, config=self.config, **kwargs,
        )

    # -- per-metric queries over the shared trace ---------------------------
    def muls(self, schedule: ScheduleLike, horizon: Optional[int] = None) -> Dict[Node, int]:
        """``{node: maximum unhappiness length}``."""
        horizon = self.resolve_horizon(horizon)
        return max_unhappiness_lengths(
            schedule, self.graph, horizon,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def gaps(self, schedule: ScheduleLike, horizon: Optional[int] = None) -> Dict[Node, List[int]]:
        """``{node: unhappiness interval lengths}``."""
        horizon = self.resolve_horizon(horizon)
        return unhappiness_gaps(
            schedule, self.graph, horizon,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def periods(
        self, schedule: ScheduleLike, horizon: Optional[int] = None
    ) -> Dict[Node, Optional[int]]:
        """``{node: observed hosting period or None}``."""
        horizon = self.resolve_horizon(horizon)
        return observed_periods(
            schedule, self.graph, horizon,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def rates(self, schedule: ScheduleLike, horizon: Optional[int] = None) -> Dict[Node, float]:
        """``{node: fraction of holidays hosted}``."""
        horizon = self.resolve_horizon(horizon)
        return happiness_rates(
            schedule, self.graph, horizon,
            trace=self.trace(schedule, horizon), config=self.config,
        )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Session(graph={self.graph.name!r}, config={self.config.describe()}, "
            f"cached_traces={len(self._traces)})"
        )

"""Appendix A.3: maximum satisfaction and the alternating schedule.

A parent is *satisfied* on a holiday when at least one of its children is at
home.  Unlike happiness, satisfaction is easy to maximise:

* parents with an unmarried child are always satisfied (the child has
  nowhere else to go);
* for the remaining ("needy") parents, each married couple can satisfy one
  of its two parent families, so maximising satisfaction is a maximum
  matching between needy parents and couples —
  :func:`max_satisfaction_by_matching` solves it with Hopcroft–Karp;
* the paper's observation that "a general matching algorithm is an
  overkill" is reproduced by :func:`single_child_first_satisfaction`, the
  linear-time peeling algorithm (repeatedly satisfy a parent with exactly
  one remaining couple, then hand out the remaining couples arbitrarily);
  the tests verify it always ties the matching optimum;
* a single maximum-satisfaction gathering is socially unacceptable (the same
  parents win every year), so :func:`alternating_satisfaction_schedule`
  implements the fix described at the end of Appendix A.3: every couple
  alternates between its two families, guaranteeing no parent with at least
  one child is unsatisfied two holidays in a row.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.graphs.society import ChildId, Society
from repro.satisfaction.matching import HopcroftKarp

__all__ = [
    "SatisfactionResult",
    "max_satisfaction_by_matching",
    "single_child_first_satisfaction",
    "alternating_satisfaction_schedule",
    "satisfaction_gaps",
]

Couple = Tuple[ChildId, ChildId]


@dataclass
class SatisfactionResult:
    """Outcome of a single-holiday satisfaction assignment.

    Attributes:
        satisfied: indices of satisfied families.
        assignment: ``{couple: family index hosting it}`` for assigned couples.
        trivially_satisfied: families satisfied by an unmarried child.
    """

    satisfied: FrozenSet[int]
    assignment: Dict[Couple, int]
    trivially_satisfied: FrozenSet[int]

    @property
    def num_satisfied(self) -> int:
        """Number of satisfied families."""
        return len(self.satisfied)


def _trivially_satisfied(society: Society) -> Set[int]:
    """Families with at least one unmarried child (always satisfied)."""
    return {child[0] for child in society.unmarried_children()}


def _needy_parents(society: Society) -> Set[int]:
    """Families with children but no unmarried child: they need a couple to visit."""
    have_children = {f.index for f in society.families if f.num_children > 0}
    return have_children - _trivially_satisfied(society)


def max_satisfaction_by_matching(society: Society) -> SatisfactionResult:
    """Maximum-satisfaction assignment via Hopcroft–Karp (Theorem A.2).

    Builds the bipartite graph between needy parents and the couples that
    could visit them and extracts a maximum matching; every matched parent
    plus every trivially satisfied parent is satisfied, and no assignment
    can do better.
    """
    trivial = _trivially_satisfied(society)
    needy = _needy_parents(society)

    adjacency: Dict[int, List[Couple]] = {p: [] for p in needy}
    for couple in society.couples:
        a, b = couple
        for family in (a[0], b[0]):
            if family in needy:
                adjacency[family].append(couple)

    matching = HopcroftKarp(adjacency).solve()
    assignment: Dict[Couple, int] = {couple: parent for parent, couple in matching.items()}
    satisfied = frozenset(trivial | set(matching.keys()))
    return SatisfactionResult(
        satisfied=satisfied,
        assignment=assignment,
        trivially_satisfied=frozenset(trivial),
    )


def single_child_first_satisfaction(society: Society) -> SatisfactionResult:
    """The paper's linear-time satisfaction algorithm.

    Phase 1 repeatedly satisfies a needy parent with exactly one remaining
    couple (peeling).  Phase 2 hands the remaining couples out one at a
    time, always serving a parent that has exactly one remaining couple if
    such a parent exists (the paper notes there is at most one at any time).
    The result always satisfies as many parents as the matching optimum —
    verified against :func:`max_satisfaction_by_matching` in the tests.
    """
    trivial = _trivially_satisfied(society)
    needy = _needy_parents(society)

    remaining: Dict[int, Set[Couple]] = {p: set() for p in needy}
    live_couples: Set[Couple] = set()
    for couple in society.couples:
        endpoints = [f for f in (couple[0][0], couple[1][0]) if f in needy]
        if not endpoints:
            continue
        live_couples.add(couple)
        for family in endpoints:
            remaining[family].add(couple)

    satisfied: Set[int] = set()
    assignment: Dict[Couple, int] = {}

    def assign(parent: int, couple: Couple) -> None:
        assignment[couple] = parent
        satisfied.add(parent)
        live_couples.discard(couple)
        for family in (couple[0][0], couple[1][0]):
            if family in remaining:
                remaining[family].discard(couple)

    def pop_single() -> Optional[int]:
        for parent in sorted(remaining):
            if parent not in satisfied and len(remaining[parent]) == 1:
                return parent
        return None

    # Phase 1: peel single-couple parents.
    parent = pop_single()
    while parent is not None:
        couple = next(iter(remaining[parent]))
        assign(parent, couple)
        parent = pop_single()

    # Phase 2: hand out the remaining couples, preferring single-couple parents.
    while True:
        parent = pop_single()
        if parent is None:
            candidates = [
                p for p in sorted(remaining) if p not in satisfied and remaining[p]
            ]
            if not candidates:
                break
            parent = candidates[0]
        couple = next(iter(sorted(remaining[parent])))
        assign(parent, couple)

    return SatisfactionResult(
        satisfied=frozenset(trivial | satisfied),
        assignment=assignment,
        trivially_satisfied=frozenset(trivial),
    )


def alternating_satisfaction_schedule(society: Society, horizon: int) -> List[FrozenSet[int]]:
    """The "no parent waits more than a year" schedule.

    Every couple alternates between its two families: on odd holidays it
    visits the family of its first partner, on even holidays the family of
    its second partner.  Parents with an unmarried child are satisfied every
    holiday.  Consequently every family with at least one child is satisfied
    at least every other holiday.
    """
    if horizon < 1:
        raise ValueError("horizon must be >= 1")
    trivial = _trivially_satisfied(society)
    schedule: List[FrozenSet[int]] = []
    for holiday in range(1, horizon + 1):
        satisfied: Set[int] = set(trivial)
        for a, b in society.couples:
            host = a[0] if holiday % 2 == 1 else b[0]
            satisfied.add(host)
        schedule.append(frozenset(satisfied))
    return schedule


def satisfaction_gaps(schedule: List[FrozenSet[int]], society: Society) -> Dict[int, int]:
    """Longest run of consecutive unsatisfied holidays per family with children."""
    gaps: Dict[int, int] = {}
    for family in society.families:
        if family.num_children == 0:
            continue
        longest = 0
        current = 0
        for satisfied in schedule:
            if family.index in satisfied:
                current = 0
            else:
                current += 1
                longest = max(longest, current)
        gaps[family.index] = longest
    return gaps

"""Appendix A substrate: happiness vs. satisfaction as one-shot optimisation problems.

* maximising *happiness* in a single holiday is exactly the maximum
  independent set problem (MAXSNP-hard) — :mod:`repro.satisfaction.independent_set`
  provides an exact branch-and-bound solver for small graphs plus greedy
  approximations, used to quantify the hardness gap empirically;
* maximising *satisfaction* (every satisfied parent hosts at least one
  child) reduces to maximum bipartite matching —
  :mod:`repro.satisfaction.matching` implements Hopcroft–Karp from scratch
  and :mod:`repro.satisfaction.satisfaction` adds the paper's linear-time
  single-child-first algorithm and the alternating schedule that guarantees
  no parent is unsatisfied two holidays in a row.
"""

from repro.satisfaction.independent_set import (
    exact_maximum_independent_set,
    greedy_independent_set,
    independence_number_bounds,
)
from repro.satisfaction.matching import HopcroftKarp, maximum_bipartite_matching
from repro.satisfaction.satisfaction import (
    alternating_satisfaction_schedule,
    max_satisfaction_by_matching,
    single_child_first_satisfaction,
)
from repro.satisfaction.shapley import (
    ShapleyEstimate,
    coalition_value,
    estimate_shapley_values,
    fair_share_vector,
    marginal_contributions,
)

__all__ = [
    "ShapleyEstimate",
    "coalition_value",
    "estimate_shapley_values",
    "fair_share_vector",
    "marginal_contributions",
    "exact_maximum_independent_set",
    "greedy_independent_set",
    "independence_number_bounds",
    "HopcroftKarp",
    "maximum_bipartite_matching",
    "max_satisfaction_by_matching",
    "single_child_first_satisfaction",
    "alternating_satisfaction_schedule",
]

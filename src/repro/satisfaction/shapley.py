"""Appendix A.2: the hardness of being fair — the happiness coalitional game.

The appendix defines a coalitional game on the conflict graph: the value
``v(S)`` of a coalition ``S ⊆ P`` is the size of the maximum independent set
of the subgraph induced by ``S`` (the most happiness the families of ``S``
can collectively obtain if everyone else gives up).  Two observations are
made:

1. for **any** ordering of the players, the sum of marginal contributions is
   exactly ``v(P) = MIS(G)`` — so the Shapley value (the expectation of the
   marginal contribution over a random order) sums to the MIS size, and any
   scheme that approximates these fair shares also approximates the MIS,
   which is ``n^{1-ε}``-inapproximable;
2. consequently fairness notions based on maximum happiness are impractical,
   which is why the paper competes with the first-come-first-grab landmark
   ``1/(deg(p)+1)`` instead.

This module makes both observations executable: exact per-order marginal
contributions (using the exact MIS solver, so small graphs only), Monte Carlo
Shapley estimation, and the closed-form fair-share vector
``1/(deg(p)+1)`` they are compared against in benchmark E11.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence

from repro.core.problem import ConflictGraph, Node
from repro.satisfaction.independent_set import exact_maximum_independent_set, greedy_independent_set
from repro.utils.rng import RngStream

__all__ = [
    "coalition_value",
    "marginal_contributions",
    "ShapleyEstimate",
    "estimate_shapley_values",
    "fair_share_vector",
]


def coalition_value(graph: ConflictGraph, coalition: Sequence[Node], exact: bool = True) -> int:
    """``v(S)``: the maximum happiness the coalition ``S`` can obtain on its own.

    With ``exact=True`` (default) the exact MIS of the induced subgraph is
    computed — exponential in the worst case, intended for the small graphs
    of the Appendix A.2 experiment.  ``exact=False`` falls back to the greedy
    maximal independent set, which is what makes the hardness observation
    bite (the greedy value is not even guaranteed to be monotone enough for
    meaningful shares).
    """
    sub = graph.subgraph(coalition)
    if exact:
        return len(exact_maximum_independent_set(sub, node_limit=sub.num_nodes()))
    return len(greedy_independent_set(sub))


def marginal_contributions(
    graph: ConflictGraph, order: Sequence[Node], exact: bool = True
) -> Dict[Node, int]:
    """Marginal contribution of every node under one arrival order.

    ``contribution(p) = v(S ∪ {p}) - v(S)`` where ``S`` is the set of nodes
    arriving before ``p``.  The appendix's observation — that these always
    sum to ``v(P)`` — follows because ``v`` increases by 0 or 1 at each step
    and ends at the full MIS size; the tests verify it on every sampled
    order.
    """
    if sorted(map(repr, order)) != sorted(map(repr, graph.nodes())):
        raise ValueError("order must be a permutation of the graph's nodes")
    contributions: Dict[Node, int] = {}
    prefix: List[Node] = []
    previous = 0
    for node in order:
        prefix.append(node)
        value = coalition_value(graph, prefix, exact=exact)
        contributions[node] = value - previous
        previous = value
    return contributions


def fair_share_vector(graph: ConflictGraph) -> Dict[Node, float]:
    """The paper's practical landmark: ``1/(deg(p)+1)`` per node.

    This is both the first-come-first-grab hosting probability and the
    Caro–Wei lower bound on the MIS density, which is why it serves as the
    "fair share" that the schedulers are measured against instead of the
    intractable Shapley value.
    """
    return {p: 1.0 / (graph.degree(p) + 1) for p in graph.nodes()}


@dataclass
class ShapleyEstimate:
    """Monte Carlo estimate of the Shapley values of the happiness game."""

    values: Dict[Node, float]
    samples: int
    total_value: float

    def normalised(self) -> Dict[Node, float]:
        """Shares normalised to sum to 1 (useful for comparing to fair-share vectors)."""
        if self.total_value == 0:
            return {p: 0.0 for p in self.values}
        return {p: v / self.total_value for p, v in self.values.items()}


def estimate_shapley_values(
    graph: ConflictGraph,
    samples: int = 200,
    seed: int = 0,
    exact: bool = True,
    node_limit: int = 40,
) -> ShapleyEstimate:
    """Monte Carlo Shapley estimation by sampling random arrival orders.

    Each sample draws a uniformly random permutation and accumulates every
    node's marginal contribution; the estimate is the per-node average.  The
    efficiency property (estimates summing to ``v(P)``) holds exactly for
    every sample, hence also for the average — this is the quantity the
    appendix uses to argue that approximating fair shares approximates MIS.

    Raises :class:`ValueError` for graphs larger than ``node_limit`` when
    ``exact`` is requested (each sample costs ``n`` exact MIS calls).
    """
    if samples < 1:
        raise ValueError("samples must be >= 1")
    if exact and graph.num_nodes() > node_limit:
        raise ValueError(
            f"exact Shapley sampling limited to {node_limit} nodes (got {graph.num_nodes()}); "
            "pass exact=False to use the greedy value function"
        )
    nodes = graph.nodes()
    totals: Dict[Node, float] = {p: 0.0 for p in nodes}
    rng = RngStream(seed, ("shapley", graph.name))
    for _ in range(samples):
        order = list(nodes)
        rng.shuffle(order)
        for node, contribution in marginal_contributions(graph, order, exact=exact).items():
            totals[node] += contribution
    values = {p: totals[p] / samples for p in nodes}
    full_value = float(coalition_value(graph, nodes, exact=exact))
    return ShapleyEstimate(values=values, samples=samples, total_value=full_value)

"""Maximum independent set: exact (small graphs) and greedy solvers.

Appendix A.1 observes that maximising happiness in a single holiday is the
maximum independent set (MIS) problem, MAXSNP-hard already on degree-3
graphs.  The reproduction uses these solvers to:

* measure the per-holiday happiness of the schedulers against the true
  optimum on small instances (E8);
* demonstrate the exact-vs-greedy gap that makes fairness notions based on
  maximum happiness impractical (Appendix A.2).

The exact solver is a classical branch-and-bound on the highest-degree
vertex with a greedy lower bound and a ``Δ+1``-coloring upper bound; it is
exponential in the worst case and guarded by a node-count limit.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Optional, Set, Tuple

from repro.core.problem import ConflictGraph, Node

__all__ = [
    "exact_maximum_independent_set",
    "greedy_independent_set",
    "independence_number_bounds",
]

_EXACT_NODE_LIMIT = 60


def greedy_independent_set(graph: ConflictGraph, by_degree: bool = True) -> FrozenSet[Node]:
    """A maximal independent set via the minimum-degree greedy heuristic.

    Repeatedly pick a remaining node of minimum degree (a good heuristic for
    MIS: it achieves a ``(Δ+2)/3`` approximation) and delete its closed
    neighborhood.  With ``by_degree=False`` nodes are taken in stable order
    instead, which is the cheapest maximal-independent-set construction.
    """
    remaining: Dict[Node, Set[Node]] = {p: set(graph.neighbors(p)) for p in graph.nodes()}
    chosen: List[Node] = []
    while remaining:
        if by_degree:
            p = min(remaining, key=lambda q: (len(remaining[q]), repr(q)))
        else:
            p = next(iter(sorted(remaining, key=repr)))
        chosen.append(p)
        to_remove = remaining[p] | {p}
        for q in to_remove:
            remaining.pop(q, None)
        for q, nbrs in remaining.items():
            nbrs -= to_remove
    return frozenset(chosen)


def _exact_mis(adj: Dict[Node, Set[Node]], best_size: int) -> Set[Node]:
    """Branch and bound MIS on an adjacency-dict graph (mutual recursion helper)."""
    if not adj:
        return set()
    # Prune isolated / degree-1 reductions: isolated nodes are always taken.
    isolated = [p for p, nbrs in adj.items() if not nbrs]
    if isolated:
        rest = {p: set(nbrs) for p, nbrs in adj.items() if p not in isolated}
        return set(isolated) | _exact_mis(rest, best_size - len(isolated))
    # Upper bound: a graph with m edges and n nodes has MIS <= n - m/Δ ... use the
    # simple bound n (cheap) plus the matching-based bound n - matching is omitted
    # for clarity; the degree-1 rule below does most of the pruning on our inputs.
    degree_one = next((p for p, nbrs in adj.items() if len(nbrs) == 1), None)
    if degree_one is not None:
        # Taking a degree-1 node is always optimal.
        neighbor = next(iter(adj[degree_one]))
        removed = {degree_one, neighbor}
        rest = {
            p: {q for q in nbrs if q not in removed}
            for p, nbrs in adj.items()
            if p not in removed
        }
        return {degree_one} | _exact_mis(rest, best_size - 1)

    # Branch on a maximum-degree vertex v: either exclude v or include v.
    v = max(adj, key=lambda p: (len(adj[p]), repr(p)))

    # Branch 1: include v (remove closed neighborhood).
    removed = adj[v] | {v}
    rest_in = {
        p: {q for q in nbrs if q not in removed} for p, nbrs in adj.items() if p not in removed
    }
    with_v = {v} | _exact_mis(rest_in, best_size - 1)

    # Branch 2: exclude v.
    rest_out = {p: set(nbrs) for p, nbrs in adj.items() if p != v}
    for nbrs in rest_out.values():
        nbrs.discard(v)
    without_v = _exact_mis(rest_out, max(best_size, len(with_v)))

    return with_v if len(with_v) >= len(without_v) else without_v


def exact_maximum_independent_set(
    graph: ConflictGraph, node_limit: int = _EXACT_NODE_LIMIT
) -> FrozenSet[Node]:
    """The exact maximum independent set (exponential time; small graphs only).

    Raises :class:`ValueError` when the graph exceeds ``node_limit`` nodes to
    protect callers from accidental exponential blow-ups.
    """
    if graph.num_nodes() > node_limit:
        raise ValueError(
            f"exact MIS limited to {node_limit} nodes (got {graph.num_nodes()}); "
            "use greedy_independent_set for larger graphs"
        )
    adj = {p: set(graph.neighbors(p)) for p in graph.nodes()}
    return frozenset(_exact_mis(adj, 0))


def independence_number_bounds(graph: ConflictGraph) -> Tuple[int, int]:
    """Cheap (lower, upper) bounds on the independence number α(G).

    Lower bound: the size of the greedy maximal independent set.  Upper
    bound: ``n - |M|`` for a greedily constructed maximal matching ``M``
    (each matched edge contributes at most one node to any independent set).
    """
    lower = len(greedy_independent_set(graph))
    # Greedy maximal matching for the upper bound α(G) <= n - |matching|.
    matched: Set[Node] = set()
    matching_size = 0
    for u, v in graph.edges():
        if u not in matched and v not in matched:
            matched.add(u)
            matched.add(v)
            matching_size += 1
    upper = graph.num_nodes() - matching_size
    return lower, max(lower, upper)

"""Maximum bipartite matching via Hopcroft–Karp, implemented from scratch.

Appendix A.3 reduces maximum satisfaction to maximum matching in the
bipartite parents/children graph and cites the Hopcroft–Karp
``O(√n · |E|)`` algorithm.  The implementation here follows the classical
description: repeat (BFS layering from free left vertices, then DFS along
layered alternating paths to find a maximal set of vertex-disjoint shortest
augmenting paths) until no augmenting path exists.

The solver works on any bipartite graph given as a ``{left: iterable of
right}`` adjacency mapping, so it is reusable beyond the satisfaction
experiments (the tests cross-check it against brute force and against
networkx on random instances).
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Hashable, Iterable, List, Mapping, Optional, Set, Tuple

__all__ = ["HopcroftKarp", "maximum_bipartite_matching"]

_INF = float("inf")


class HopcroftKarp:
    """Maximum matching in a bipartite graph.

    Args:
        adjacency: mapping from every left vertex to its right neighbors.
            Right vertices are discovered from the adjacency lists.
    """

    def __init__(self, adjacency: Mapping[Hashable, Iterable[Hashable]]) -> None:
        self.left: List[Hashable] = list(adjacency.keys())
        self.adj: Dict[Hashable, List[Hashable]] = {
            u: list(dict.fromkeys(adjacency[u])) for u in self.left
        }
        right: Set[Hashable] = set()
        for neighbors in self.adj.values():
            right.update(neighbors)
        self.right: List[Hashable] = sorted(right, key=repr)
        self.match_left: Dict[Hashable, Optional[Hashable]] = {u: None for u in self.left}
        self.match_right: Dict[Hashable, Optional[Hashable]] = {v: None for v in self.right}
        self._dist: Dict[Optional[Hashable], float] = {}
        self._solved = False

    # -- core algorithm ------------------------------------------------------------
    def _bfs(self) -> bool:
        """Layer the graph from free left vertices; True if a free right vertex is reachable."""
        queue: deque = deque()
        for u in self.left:
            if self.match_left[u] is None:
                self._dist[u] = 0
                queue.append(u)
            else:
                self._dist[u] = _INF
        self._dist[None] = _INF
        while queue:
            u = queue.popleft()
            if self._dist[u] < self._dist[None]:
                for v in self.adj[u]:
                    w = self.match_right[v]
                    if self._dist.get(w, _INF) == _INF:
                        self._dist[w] = self._dist[u] + 1
                        if w is not None:
                            queue.append(w)
        return self._dist[None] != _INF

    def _dfs(self, u: Hashable) -> bool:
        """Try to extend an augmenting path from left vertex ``u`` along the layering."""
        for v in self.adj[u]:
            w = self.match_right[v]
            if (w is None and self._dist[None] == self._dist[u] + 1) or (
                w is not None and self._dist.get(w, _INF) == self._dist[u] + 1 and self._dfs(w)
            ):
                self.match_left[u] = v
                self.match_right[v] = u
                return True
        self._dist[u] = _INF
        return False

    def solve(self) -> Dict[Hashable, Hashable]:
        """Compute a maximum matching; returns ``{left: right}`` for matched pairs."""
        if not self._solved:
            matching_size = 0
            while self._bfs():
                for u in self.left:
                    if self.match_left[u] is None and self._dfs(u):
                        matching_size += 1
            self._solved = True
        return {u: v for u, v in self.match_left.items() if v is not None}

    def matching_size(self) -> int:
        """Size of the maximum matching."""
        return len(self.solve())

    def is_perfect_on_left(self) -> bool:
        """True when every left vertex is matched."""
        return self.matching_size() == len(self.left)


def maximum_bipartite_matching(
    adjacency: Mapping[Hashable, Iterable[Hashable]]
) -> Dict[Hashable, Hashable]:
    """Convenience wrapper: maximum matching ``{left: right}`` of a bipartite graph."""
    return HopcroftKarp(adjacency).solve()

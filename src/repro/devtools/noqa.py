"""``# repro: noqa[REPxxx]`` suppression comments.

The project's suppression marker is deliberately namespaced (``repro:
noqa``) so it never collides with flake8/ruff's bare ``# noqa`` — the two
tools suppress independent rule sets.  Forms:

* ``# repro: noqa[REP103]`` — suppress one code on this line;
* ``# repro: noqa[REP103,REP106]`` — several codes;
* ``# repro: noqa`` — every code on this line (discouraged; prefer codes).

Policy (``docs/linting.md``): every suppression carries a one-line reason
in the same comment, e.g. ``# repro: noqa[REP103] - wall-clock stamp only``.
"""

from __future__ import annotations

import io
import re
import tokenize
from typing import Dict, FrozenSet

__all__ = ["parse_noqa", "suppresses", "ALL_CODES"]

#: sentinel for a bare ``# repro: noqa`` (suppresses every code on the line)
ALL_CODES: FrozenSet[str] = frozenset({"*"})

_NOQA = re.compile(
    r"#\s*repro:\s*noqa(?:\[(?P<codes>[A-Z0-9,\s]+)\])?", re.IGNORECASE
)


def parse_noqa(source: str) -> Dict[int, FrozenSet[str]]:
    """Map line number -> suppressed codes for one file's source.

    Uses :mod:`tokenize` (not a per-line regex) so markers inside string
    literals don't suppress anything.  The caller has already parsed the
    file, so tokenization cannot fail on syntax.
    """
    suppressions: Dict[int, FrozenSet[str]] = {}
    for token in tokenize.generate_tokens(io.StringIO(source).readline):
        if token.type != tokenize.COMMENT:
            continue
        match = _NOQA.search(token.string)
        if match is None:
            continue
        codes = match.group("codes")
        if codes is None:
            suppressions[token.start[0]] = ALL_CODES
        else:
            parsed = frozenset(
                code.strip().upper() for code in codes.split(",") if code.strip()
            )
            suppressions[token.start[0]] = suppressions.get(token.start[0], frozenset()) | parsed
    return suppressions


def suppresses(suppressions: Dict[int, FrozenSet[str]], line: int, code: str) -> bool:
    """True when the noqa map silences ``code`` on ``line``."""
    codes = suppressions.get(line)
    if codes is None:
        return False
    return codes is ALL_CODES or "*" in codes or code in codes

"""Rule base class and registry (the :mod:`repro.algorithms.registry` idiom).

A rule is a stateless class with a stable ``code`` (``REPxxx``), a
``category``, a one-line ``description`` and one or both hooks:

* :meth:`Rule.check_file` — runs once per parsed file (file-local AST
  visitors live here);
* :meth:`Rule.check_project` — runs once per lint invocation with every
  parsed file in hand (cross-module consistency checks live here).

Rules self-register at import time via the :func:`register_rule` decorator;
importing :mod:`repro.devtools.rules` pulls in the whole built-in set.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Dict, Iterable, Iterator, List, Sequence

from repro.devtools.findings import Finding

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from repro.devtools.context import FileContext, Project

__all__ = ["Rule", "register_rule", "get_rule", "available_rules", "select_rules"]


class Rule:
    """Base class for one lint rule; subclasses override the hooks they need."""

    #: stable identifier, ``REP`` + 3 digits (what noqa/--select match on)
    code: str = ""
    #: short kebab-case name for reports
    name: str = ""
    #: invariant family: determinism, picklability, hashing, ...
    category: str = ""
    #: one line for ``--list-rules``
    description: str = ""

    def check_file(self, ctx: "FileContext") -> Iterator[Finding]:
        """Findings local to one file (default: none)."""
        return iter(())

    def check_project(self, project: "Project") -> Iterator[Finding]:
        """Findings needing the whole file set (default: none)."""
        return iter(())


_RULES: Dict[str, Rule] = {}


def register_rule(cls: type) -> type:
    """Class decorator: instantiate and register a :class:`Rule` subclass.

    Raises :class:`ValueError` on duplicate or malformed codes so a typo'd
    rule fails at import, not silently at selection time.
    """
    rule = cls()
    if not (rule.code.startswith("REP") and rule.code[3:].isdigit()):
        raise ValueError(f"rule code must be REP<digits>, got {rule.code!r}")
    if rule.code in _RULES:
        raise ValueError(f"rule {rule.code} is already registered")
    _RULES[rule.code] = rule
    return cls


def get_rule(code: str) -> Rule:
    """The rule registered under ``code``."""
    if code not in _RULES:
        raise KeyError(f"unknown rule {code!r}; available: {', '.join(sorted(_RULES))}")
    return _RULES[code]


def available_rules() -> List[Rule]:
    """Every registered rule, sorted by code."""
    return [_RULES[code] for code in sorted(_RULES)]


def select_rules(
    select: Sequence[str] = (), ignore: Sequence[str] = ()
) -> List[Rule]:
    """The registered rules surviving ``--select`` / ``--ignore`` filters.

    Codes match by prefix (``REP1`` selects every ``REP1xx`` rule, flake8
    style); an empty ``select`` means all rules.  Unknown prefixes raise
    :class:`ValueError` so a typo'd filter can't silently disable a check.
    """

    def matches(code: str, prefixes: Iterable[str]) -> bool:
        return any(code.startswith(p) for p in prefixes)

    for prefix in list(select) + list(ignore):
        if not any(code.startswith(prefix) for code in _RULES):
            raise ValueError(
                f"no registered rule matches {prefix!r}; "
                f"available: {', '.join(sorted(_RULES))}"
            )
    chosen = [
        rule
        for rule in available_rules()
        if (not select or matches(rule.code, select)) and not matches(rule.code, ignore)
    ]
    return chosen

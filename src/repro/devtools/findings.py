"""The unit of lint output: one :class:`Finding` per violated contract site."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict


@dataclass(frozen=True, order=True)
class Finding:
    """One rule violation at one source location.

    Ordering is ``(path, line, column, code)`` — the dataclass field order —
    so a sorted findings list reads like a compiler's output and the JSON
    report is byte-stable for a given tree.
    """

    path: str
    line: int
    column: int
    code: str
    message: str

    def to_dict(self) -> Dict[str, object]:
        """The JSON-report form (see ``docs/linting.md``)."""
        from repro.devtools.registry import get_rule

        rule = get_rule(self.code)
        return {
            "code": self.code,
            "rule": rule.name,
            "category": rule.category,
            "path": self.path,
            "line": self.line,
            "column": self.column,
            "message": self.message,
        }

    def render(self) -> str:
        """``path:line:col: CODE message`` — the text-reporter line."""
        return f"{self.path}:{self.line}:{self.column}: {self.code} {self.message}"

"""REP101 — deprecated per-call engine kwargs at entry points.

The :class:`~repro.core.config.EngineConfig` migration (PR 5) left the
historical ``backend=``/``mode=``/``chunk=``/``jobs=`` keywords alive as a
shim that emits one :class:`DeprecationWarning` per call.  The CI
``deprecation-clean`` job proves first-party code never *executes* the
shim; this rule is its static companion — the same contract enforced
without running anything, so a reintroduced legacy kwarg fails at review
even on a code path no test covers.

Per entry point only the kwargs that are actually deprecated there are
flagged (``compare_schedulers(jobs=...)`` is the *current* cell fan-out
knob and stays legal; its deprecated spelling is ``stream_jobs=``).
"""

from __future__ import annotations

import ast
from typing import Dict, FrozenSet, Iterator

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule
from repro.devtools.rules._util import callee_name

#: trace/metric/validation entry points sharing the metrics-layer shim
#: spelling (``mode`` for the horizon mode, ``jobs`` for stream workers).
_METRIC_LEGACY = frozenset({"backend", "mode", "chunk", "jobs"})

#: entry point -> the kwargs deprecated *for that entry point*.
DEPRECATED_KWARGS: Dict[str, FrozenSet[str]] = {
    "build_trace": _METRIC_LEGACY,
    "evaluate_schedule": _METRIC_LEGACY,
    "max_unhappiness_lengths": _METRIC_LEGACY,
    "unhappiness_gaps": _METRIC_LEGACY,
    "observed_periods": _METRIC_LEGACY,
    "happiness_rates": _METRIC_LEGACY,
    "normalized_gaps": _METRIC_LEGACY,
    "check_independent_sets": _METRIC_LEGACY,
    "certify_local_bound": _METRIC_LEGACY,
    "certify_periodicity": _METRIC_LEGACY,
    "validate_schedule": _METRIC_LEGACY,
    "run_scheduler": frozenset({"backend", "horizon_mode", "chunk", "jobs"}),
    "compare_schedulers": frozenset({"backend", "horizon_mode", "chunk", "stream_jobs"}),
    "ExperimentSpec": frozenset({"backend", "horizon_mode", "chunk", "stream_jobs"}),
    "ExperimentCell": frozenset({"backend", "horizon_mode", "chunk", "stream_jobs"}),
}


@register_rule
class LegacyEngineKwargs(Rule):
    code = "REP101"
    name = "legacy-engine-kwargs"
    category = "deprecation"
    description = "deprecated backend=/mode=/chunk=/jobs= passed to an engine entry point"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.Call):
                continue
            name = callee_name(node)
            deprecated = DEPRECATED_KWARGS.get(name or "")
            if not deprecated:
                continue
            for keyword in node.keywords:
                if keyword.arg in deprecated:
                    yield Finding(
                        path=ctx.path,
                        line=keyword.value.lineno,
                        column=keyword.value.col_offset,
                        code=self.code,
                        message=(
                            f"deprecated engine kwarg {keyword.arg}= passed to "
                            f"{name}(); pass config=EngineConfig(...) instead "
                            "(repro.core.config)"
                        ),
                    )

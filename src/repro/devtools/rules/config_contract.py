"""REP104 — every ``EngineConfig`` field must decide its hashing story.

Adding a knob to :class:`repro.core.config.EngineConfig` silently touches
three contracts at once: cell ids (``non_default`` feeds
``ExperimentCell.cell_id``), spec JSON (``to_dict``/``from_dict``), and the
serve-layer trace-cache key (``cache_key`` must either include the knob or
*deliberately* exclude it as wall-clock-only).  PR 6's ``batch`` and
PR 9's ``checkpoint`` each had to make that include-or-exclude call by
hand; this rule makes forgetting it a lint error.

The contract, as encoded in ``core/config.py``:

* the module declares ``RESULT_KNOBS`` (fields that change computed
  results — part of every cache key) and ``WALL_CLOCK_KNOBS`` (fields the
  determinism contracts prove result-neutral — excluded from cache keys);
* every dataclass field appears in exactly one of the two sets, and every
  set entry is a real field (no stale names);
* ``cache_key()`` derives its exclusions from ``WALL_CLOCK_KNOBS`` (not a
  drifting inline literal);
* ``non_default()``, ``to_dict()`` and ``from_dict()`` are field-generic
  (``dataclasses.fields``) or mention every field explicitly.

This is a *project-level* check: it fires on whichever linted module
defines a ``@dataclass`` named ``EngineConfig``.
"""

from __future__ import annotations

import ast
from typing import Dict, Iterator, List, Optional, Set

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

_INCLUDE_SET = "RESULT_KNOBS"
_EXCLUDE_SET = "WALL_CLOCK_KNOBS"
_SERIALIZERS = ("non_default", "to_dict", "from_dict")


def _dataclass_fields(cls: ast.ClassDef) -> Dict[str, int]:
    """Field name -> line for the annotated fields of a dataclass body
    (``ClassVar``/``InitVar`` annotations are not fields)."""
    fields: Dict[str, int] = {}
    for stmt in cls.body:
        if not (isinstance(stmt, ast.AnnAssign) and isinstance(stmt.target, ast.Name)):
            continue
        annotation_names = {
            n.id if isinstance(n, ast.Name) else n.attr
            for n in ast.walk(stmt.annotation)
            if isinstance(n, (ast.Name, ast.Attribute))
        }
        if annotation_names & {"ClassVar", "InitVar"}:
            continue
        fields[stmt.target.id] = stmt.lineno
    return fields


def _knob_set(tree: ast.Module, name: str) -> Optional[ast.Assign]:
    for stmt in tree.body:
        if isinstance(stmt, ast.Assign) and any(
            isinstance(t, ast.Name) and t.id == name for t in stmt.targets
        ):
            return stmt
    return None


def _string_constants(node: ast.AST) -> Set[str]:
    return {
        n.value
        for n in ast.walk(node)
        if isinstance(n, ast.Constant) and isinstance(n.value, str)
    }


def _method(cls: ast.ClassDef, name: str) -> Optional[ast.FunctionDef]:
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == name:
            return stmt
    return None


def _is_field_generic(fn: ast.FunctionDef) -> bool:
    """True when the method iterates ``dataclasses.fields(...)``."""
    return any(
        isinstance(n, ast.Call)
        and (
            (isinstance(n.func, ast.Name) and n.func.id == "fields")
            or (isinstance(n.func, ast.Attribute) and n.func.attr == "fields")
        )
        for n in ast.walk(fn)
    )


def _references(fn: ast.FunctionDef, name: str) -> bool:
    return any(isinstance(n, ast.Name) and n.id == name for n in ast.walk(fn))


@register_rule
class EngineConfigContract(Rule):
    code = "REP104"
    name = "engine-config-contract"
    category = "hashing"
    description = "every EngineConfig field decided in RESULT_KNOBS/WALL_CLOCK_KNOBS and serializers"

    def check_project(self, project: Project) -> Iterator[Finding]:
        for ctx in project.files:
            for node in ctx.tree.body:
                if isinstance(node, ast.ClassDef) and node.name == "EngineConfig":
                    yield from self._check_config(ctx, node)

    def _check_config(self, ctx: FileContext, cls: ast.ClassDef) -> Iterator[Finding]:
        def finding(line: int, message: str) -> Finding:
            return Finding(path=ctx.path, line=line, column=0, code=self.code, message=message)

        fields = _dataclass_fields(cls)
        include_stmt = _knob_set(ctx.tree, _INCLUDE_SET)
        exclude_stmt = _knob_set(ctx.tree, _EXCLUDE_SET)
        if include_stmt is None or exclude_stmt is None:
            missing = [
                name
                for name, stmt in ((_INCLUDE_SET, include_stmt), (_EXCLUDE_SET, exclude_stmt))
                if stmt is None
            ]
            yield finding(
                cls.lineno,
                f"EngineConfig module must declare {' and '.join(missing)} so every "
                "knob's cache-key story is explicit",
            )
            return

        include = _string_constants(include_stmt.value)
        exclude = _string_constants(exclude_stmt.value)
        for name, line in fields.items():
            if name in include and name in exclude:
                yield finding(
                    line,
                    f"EngineConfig field {name!r} is in both {_INCLUDE_SET} and "
                    f"{_EXCLUDE_SET}; a knob is result-changing or wall-clock-only, "
                    "never both",
                )
            elif name not in include and name not in exclude:
                yield finding(
                    line,
                    f"EngineConfig field {name!r} is in neither {_INCLUDE_SET} nor "
                    f"{_EXCLUDE_SET}; decide its cell-id/cache-key story before "
                    "shipping the knob",
                )
        for name in sorted((include | exclude) - set(fields)):
            stmt = include_stmt if name in include else exclude_stmt
            yield finding(
                stmt.lineno,
                f"{_INCLUDE_SET if name in include else _EXCLUDE_SET} lists {name!r}, "
                "which is not an EngineConfig field (stale entry)",
            )

        cache_key = _method(cls, "cache_key")
        if cache_key is None:
            yield finding(cls.lineno, "EngineConfig must define cache_key()")
        elif not _references(cache_key, _EXCLUDE_SET):
            yield finding(
                cache_key.lineno,
                f"cache_key() must derive its exclusions from {_EXCLUDE_SET} "
                "(an inline literal drifts from the declared contract)",
            )

        for method_name in _SERIALIZERS:
            fn = _method(cls, method_name)
            if fn is None:
                yield finding(cls.lineno, f"EngineConfig must define {method_name}()")
                continue
            if _is_field_generic(fn):
                continue
            mentioned = _string_constants(fn) | {
                n.attr for n in ast.walk(fn) if isinstance(n, ast.Attribute)
            }
            missing = sorted(set(fields) - mentioned)
            if missing:
                yield finding(
                    fn.lineno,
                    f"{method_name}() handles neither dataclasses.fields(...) nor "
                    f"the field(s) {', '.join(missing)}; every knob must "
                    "serialize and hash deliberately",
                )

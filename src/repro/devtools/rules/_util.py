"""Small AST helpers shared by the rule modules."""

from __future__ import annotations

import ast
from typing import Iterator, Optional, Tuple

__all__ = ["callee_name", "walk_functions", "import_aliases"]


def callee_name(call: ast.Call) -> Optional[str]:
    """The last path segment of a call target: ``f(...)`` and ``m.f(...)``
    both answer ``"f"``; subscripted/computed callees answer ``None``."""
    func = call.func
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def walk_functions(tree: ast.AST) -> Iterator[ast.AST]:
    """Every function/lambda definition node in the tree."""
    for node in ast.walk(tree):
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.Lambda)):
            yield node


def import_aliases(tree: ast.Module, module: str) -> Tuple[set, dict]:
    """Names bound to ``module`` in this file.

    Returns ``(module_aliases, member_names)``: ``module_aliases`` are local
    names referring to the module itself (``import random`` -> ``random``,
    ``import random as _r`` -> ``_r``), ``member_names`` maps local names of
    ``from module import x [as y]`` bindings to the imported member.
    """
    aliases = set()
    members = {}
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                if alias.name == module:
                    aliases.add(alias.asname or alias.name)
        elif isinstance(node, ast.ImportFrom) and node.module == module:
            for alias in node.names:
                members[alias.asname or alias.name] = alias.name
    return aliases, members

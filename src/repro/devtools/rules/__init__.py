"""The built-in rule set; importing this package registers every rule.

One module per rule family, each grounded in a runtime-enforced invariant
(the catalogue with the backing test for each lives in ``docs/linting.md``):

========  ==========================  ==============================================
REP101    legacy-engine-kwargs        deprecated ``backend=``/``mode=``/``chunk=``/
                                      ``jobs=`` at entry points (config shim)
REP102    picklable-pool-workers      ``ProcessPoolExecutor`` callables must be
                                      module-level functions
REP103    engine-determinism          ``time.time()``, global ``random.*``, unsorted
                                      set iteration, unsorted ``json.dumps`` in
                                      engine modules
REP104    engine-config-contract      every ``EngineConfig`` field decided in
                                      RESULT_KNOBS / WALL_CLOCK_KNOBS + serializers
REP105    serve-lock-discipline       mutable serve-layer state written outside
                                      ``with self._lock:``
REP106    no-print-in-library         ``print()`` outside CLI modules
REP107    frozen-dataclass-mutation   ``object.__setattr__`` outside ``__post_init__``
REP108    serve-error-envelope        broad ``except`` in serve code must re-raise
                                      or answer through the error envelope
========  ==========================  ==============================================
"""

from repro.devtools.rules import (  # noqa: F401  (import registers the rules)
    config_contract,
    determinism,
    frozen_mutation,
    legacy_kwargs,
    lock_discipline,
    no_print,
    pool_pickling,
    serve_errors,
)

"""REP102 — callables handed to ``ProcessPoolExecutor`` must pickle.

The parallel engines (the streamed chunk scan of
:mod:`repro.core.trace`, the experiment pool of
:mod:`repro.analysis.engine`) ship work to ``spawn``-ed processes, and
pickle serialises functions *by qualified name*: only module-level
functions survive the trip.  A lambda, a function defined inside another
function, or a bound method submitted to ``pool.submit``/``pool.map``
raises ``PicklingError`` at runtime — but only on the ``jobs > 1`` path,
which is exactly the path unit tests exercise least.  This rule rejects
those shapes statically (the PR 4/9 worker contract: every
``_*_block_worker`` is a module-level function).

Receivers are tracked conservatively: only names provably bound to a
``ProcessPoolExecutor(...)`` (assignment or ``with ... as pool``) are
checked, so thread pools and unrelated ``.map``/``.submit`` APIs are never
flagged.  ``functools.partial(fn, ...)`` is transparent — the wrapped
callable is classified instead.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional, Set, Tuple

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule
from repro.devtools.rules._util import callee_name

_POOL_METHODS = frozenset({"submit", "map"})


def _is_pool_ctor(node: ast.AST) -> bool:
    return isinstance(node, ast.Call) and callee_name(node) == "ProcessPoolExecutor"


class _Scope:
    """One function (or the module) while walking: what's defined locally."""

    __slots__ = ("name", "is_module", "local_defs", "pool_vars")

    def __init__(self, name: str, is_module: bool = False) -> None:
        self.name = name
        self.is_module = is_module
        self.local_defs: Set[str] = set()  # nested defs + lambda bindings
        self.pool_vars: Set[str] = set()


class _Walker(ast.NodeVisitor):
    def __init__(self, path: str, code: str) -> None:
        self.path = path
        self.code = code
        self.findings: List[Finding] = []
        self.scopes: List[_Scope] = []
        self.module_lambdas: Set[str] = set()

    # -- scope bookkeeping ---------------------------------------------------
    def visit_Module(self, node: ast.Module) -> None:
        self.scopes.append(_Scope("<module>", is_module=True))
        self.generic_visit(node)
        self.scopes.pop()

    def _visit_function(self, node) -> None:
        if not self.scopes[-1].is_module:
            self.scopes[-1].local_defs.add(node.name)
        self.scopes.append(_Scope(node.name))
        self.generic_visit(node)
        self.scopes.pop()

    visit_FunctionDef = _visit_function
    visit_AsyncFunctionDef = _visit_function

    def visit_Assign(self, node: ast.Assign) -> None:
        for target in node.targets:
            if not isinstance(target, ast.Name):
                continue
            if _is_pool_ctor(node.value):
                self.scopes[-1].pool_vars.add(target.id)
            elif isinstance(node.value, ast.Lambda):
                if self.scopes[-1].is_module:
                    self.module_lambdas.add(target.id)
                else:
                    self.scopes[-1].local_defs.add(target.id)
        self.generic_visit(node)

    def visit_With(self, node: ast.With) -> None:
        for item in node.items:
            if _is_pool_ctor(item.context_expr) and isinstance(
                item.optional_vars, ast.Name
            ):
                self.scopes[-1].pool_vars.add(item.optional_vars.id)
        self.generic_visit(node)

    # -- the check -----------------------------------------------------------
    def _is_pool_receiver(self, base: ast.AST) -> bool:
        if _is_pool_ctor(base):
            return True
        if isinstance(base, ast.Name):
            return any(base.id in scope.pool_vars for scope in self.scopes)
        return False

    def _classify(self, arg: ast.AST) -> Optional[Tuple[ast.AST, str]]:
        """``(node, why)`` when the submitted callable cannot pickle."""
        if isinstance(arg, ast.Lambda):
            return arg, "a lambda"
        if isinstance(arg, ast.Call) and callee_name(arg) == "partial" and arg.args:
            return self._classify(arg.args[0])
        if isinstance(arg, ast.Name):
            for scope in reversed(self.scopes):
                if scope.is_module:
                    break
                if arg.id in scope.local_defs:
                    return arg, f"a function defined inside {scope.name}()"
            if arg.id in self.module_lambdas:
                return arg, "a module-level lambda binding"
            return None
        if isinstance(arg, ast.Attribute):
            if isinstance(arg.value, ast.Name) and arg.value.id in ("self", "cls"):
                return arg, "a bound method"
            return None
        return None

    def visit_Call(self, node: ast.Call) -> None:
        func = node.func
        if (
            isinstance(func, ast.Attribute)
            and func.attr in _POOL_METHODS
            and self._is_pool_receiver(func.value)
            and node.args
        ):
            verdict = self._classify(node.args[0])
            if verdict is not None:
                offender, why = verdict
                self.findings.append(
                    Finding(
                        path=self.path,
                        line=offender.lineno,
                        column=offender.col_offset,
                        code=self.code,
                        message=(
                            f"ProcessPoolExecutor.{func.attr}() given {why}; "
                            "workers must be picklable module-level functions "
                            "(the jobs>1 worker contract)"
                        ),
                    )
                )
        self.generic_visit(node)


@register_rule
class PicklablePoolWorkers(Rule):
    code = "REP102"
    name = "picklable-pool-workers"
    category = "picklability"
    description = "ProcessPoolExecutor.submit/map callables must be module-level functions"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        walker = _Walker(ctx.path, self.code)
        walker.visit(ctx.tree)
        return iter(walker.findings)

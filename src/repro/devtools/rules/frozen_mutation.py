"""REP107 — frozen dataclasses mutate only inside ``__post_init__``.

The repo's frozen dataclasses (``EngineConfig``, ``ExperimentSpec``/
``ExperimentCell``, ``PeriodicSchedule``, checkpoint handles) are frozen
*because* other contracts depend on their immutability: configs are
hashable dict keys and picklable worker payloads, specs hash into
content-addressed ``cell_id``s, checkpoint handles must replay
byte-identically.  ``object.__setattr__`` is the one sanctioned escape
hatch — and only during construction, inside ``__post_init__``, where the
object is not yet shared (normalising a field, absorbing an init shim).
The same call anywhere else silently mutates an object whose hash/identity
other code may already have recorded.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.devtools.context import FileContext
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule


@register_rule
class FrozenDataclassMutation(Rule):
    code = "REP107"
    name = "frozen-dataclass-mutation"
    category = "immutability"
    description = "object.__setattr__ outside __post_init__"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        findings: List[Finding] = []
        self._walk(ctx, ctx.tree, None, findings)
        return iter(findings)

    def _walk(
        self,
        ctx: FileContext,
        node: ast.AST,
        function: Optional[str],
        findings: List[Finding],
    ) -> None:
        if isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef)):
            function = node.name
        elif (
            isinstance(node, ast.Call)
            and isinstance(node.func, ast.Attribute)
            and node.func.attr == "__setattr__"
            and isinstance(node.func.value, ast.Name)
            and node.func.value.id == "object"
            and function != "__post_init__"
        ):
            where = f"{function}()" if function else "module scope"
            findings.append(
                Finding(
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    code=self.code,
                    message=(
                        f"object.__setattr__ in {where}; frozen instances mutate "
                        "only inside __post_init__, before they are shared "
                        "(hash/cell-id stability contract)"
                    ),
                )
            )
        for child in ast.iter_child_nodes(node):
            self._walk(ctx, child, function, findings)

"""REP105 — serve-layer mutable state is written under ``self._lock``.

The serving layer is the one place the codebase is genuinely concurrent:
:class:`~repro.serve.cache.TraceCache`,
:class:`~repro.serve.cache.SingleFlight` and
:class:`~repro.serve.health.ServiceMetrics` are shared across the worker
threads of a ``ThreadingHTTPServer``, and their invariants (byte budget ==
sum of entry sizes, monotonic counters, LRU order) hold only because every
mutation happens inside ``with self._lock:`` — proven dynamically by the
threaded-herd and seeded property suites in ``tests/serve/``.  This rule is
the static half: in any serve-layer class whose ``__init__`` creates a
``self._lock`` (or ``_*lock``-named) primitive, writes to ``self.*`` state
outside a lexical ``with self._lock:`` block are findings.

Flagged mutation shapes: attribute assignment/augmentation
(``self._bytes += n``), subscript stores (``self._entries[k] = v``), and
calls of known mutators on underscore attributes
(``self._entries.popitem()``, ``.move_to_end()``, ...).  ``__init__`` is
exempt — construction happens-before sharing.
"""

from __future__ import annotations

import ast
from typing import Iterator, List, Optional

from repro.devtools.context import FileContext, is_serve_module
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule

_MUTATORS = frozenset({
    "add", "append", "clear", "discard", "extend", "insert", "move_to_end",
    "pop", "popitem", "remove", "setdefault", "update",
})


def _is_self_attr(node: ast.AST) -> Optional[str]:
    if isinstance(node, ast.Attribute) and isinstance(node.value, ast.Name) and node.value.id == "self":
        return node.attr
    return None


def _lock_attr_from_init(cls: ast.ClassDef) -> Optional[str]:
    """The ``self._lock``-style attribute created in ``__init__``, if any."""
    for stmt in cls.body:
        if isinstance(stmt, ast.FunctionDef) and stmt.name == "__init__":
            for node in ast.walk(stmt):
                if isinstance(node, ast.Assign):
                    for target in node.targets:
                        attr = _is_self_attr(target)
                        if attr is not None and "lock" in attr:
                            return attr
    return None


def _holds_lock(with_node: ast.With, lock_attr: str) -> bool:
    for item in with_node.items:
        attr = _is_self_attr(item.context_expr)
        if attr is not None and "lock" in attr:
            return True
    return False


class _MethodWalker:
    """Lexical walk of one method body tracking ``with self._lock:`` nesting."""

    def __init__(self, rule: "ServeLockDiscipline", path: str, lock_attr: str) -> None:
        self.rule = rule
        self.path = path
        self.lock_attr = lock_attr
        self.findings: List[Finding] = []

    def flag(self, node: ast.AST, what: str) -> None:
        self.findings.append(
            Finding(
                path=self.path,
                line=node.lineno,
                column=node.col_offset,
                code=self.rule.code,
                message=(
                    f"{what} outside a 'with self.{self.lock_attr}:' block; "
                    "serve-layer shared state mutates under the lock "
                    "(thread-safety contract of repro.serve)"
                ),
            )
        )

    def walk(self, node: ast.AST, locked: bool) -> None:
        if isinstance(node, ast.With) and _holds_lock(node, self.lock_attr):
            for child in ast.iter_child_nodes(node):
                self.walk(child, True)
            return
        if not locked:
            self._check(node)
        for child in ast.iter_child_nodes(node):
            self.walk(child, locked)

    def _check(self, node: ast.AST) -> None:
        targets: List[ast.AST] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AugAssign, ast.AnnAssign)):
            targets = [node.target]
        for target in targets:
            attr = _is_self_attr(target)
            if attr is not None and attr != self.lock_attr:
                self.flag(target, f"write to self.{attr}")
            if isinstance(target, ast.Subscript):
                attr = _is_self_attr(target.value)
                if attr is not None:
                    self.flag(target, f"item store into self.{attr}")
        if isinstance(node, ast.Call) and isinstance(node.func, ast.Attribute):
            if node.func.attr in _MUTATORS:
                attr = _is_self_attr(node.func.value)
                if attr is not None and attr.startswith("_"):
                    self.flag(node, f"self.{attr}.{node.func.attr}()")


@register_rule
class ServeLockDiscipline(Rule):
    code = "REP105"
    name = "serve-lock-discipline"
    category = "concurrency"
    description = "serve-layer mutable state written outside 'with self._lock:'"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_serve_module(ctx.path):
            return iter(())
        findings: List[Finding] = []
        for node in ast.walk(ctx.tree):
            if not isinstance(node, ast.ClassDef):
                continue
            lock_attr = _lock_attr_from_init(node)
            if lock_attr is None:
                continue
            for stmt in node.body:
                if isinstance(stmt, ast.FunctionDef) and stmt.name != "__init__":
                    walker = _MethodWalker(self, ctx.path, lock_attr)
                    for child in ast.iter_child_nodes(stmt):
                        walker.walk(child, False)
                    findings.extend(walker.findings)
        return iter(findings)

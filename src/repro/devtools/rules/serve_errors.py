"""REP108 — broad ``except`` in serve code answers through the envelope.

The serving layer's fault contract (``tests/serve/test_faults.py``): every
failure crossing the wire is the JSON error envelope ``{"error": {"code",
"message", "status"}}`` with a matching HTTP status — a stack trace never
leaks, and a handler never swallows an error into a half-written 200.  A
``except:`` / ``except Exception:`` that neither re-raises nor responds
through an envelope helper breaks that contract silently, typically under
exactly the fault-injection conditions production sees first.  This rule
requires every broad handler in ``serve/`` code to contain a ``raise`` or
a call to one of the envelope responders (``_send_json``, ``payload``,
``error_envelope``, ``send_error``).
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import FileContext, is_serve_module
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule
from repro.devtools.rules._util import callee_name

#: calls that produce/transmit the JSON error envelope
_ENVELOPE_RESPONDERS = frozenset({
    "_send_json", "payload", "error_envelope", "send_error",
})

_BROAD = frozenset({"Exception", "BaseException"})


def _is_broad(handler: ast.ExceptHandler) -> bool:
    if handler.type is None:  # bare except:
        return True
    types = handler.type.elts if isinstance(handler.type, ast.Tuple) else [handler.type]
    for node in types:
        name = node.id if isinstance(node, ast.Name) else (
            node.attr if isinstance(node, ast.Attribute) else None
        )
        if name in _BROAD:
            return True
    return False


def _answers_properly(handler: ast.ExceptHandler) -> bool:
    for node in ast.walk(handler):
        if isinstance(node, ast.Raise):
            return True
        if isinstance(node, ast.Call) and callee_name(node) in _ENVELOPE_RESPONDERS:
            return True
    return False


@register_rule
class ServeErrorEnvelope(Rule):
    code = "REP108"
    name = "serve-error-envelope"
    category = "fault-handling"
    description = "broad except in serve code must re-raise or answer via the error envelope"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_serve_module(ctx.path):
            return iter(())
        return iter(
            Finding(
                path=ctx.path,
                line=node.lineno,
                column=node.col_offset,
                code=self.code,
                message=(
                    "broad except neither re-raises nor answers through the "
                    "error envelope; faults must surface as the JSON envelope "
                    "with a real status (repro.serve fault contract)"
                ),
            )
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.ExceptHandler)
            and _is_broad(node)
            and not _answers_properly(node)
        )

"""REP103 — nondeterminism sources in engine modules.

The engine's headline contract is byte-level reproducibility:
``jobs=1 == jobs=N``, dense == stream, batch == per-cell, and
content-addressed ``cell_id``s that never move (the differential suites in
``tests/core/`` prove each equality dynamically).  Everything rests on the
engine modules (``core/``, ``analysis/engine.py``) being pure functions of
their inputs plus explicitly derived seeds.  This rule rejects the four
ways nondeterminism has historically crept into such code:

* ``time.time()`` — wall-clock reads belong in *timing fields* stamped by
  the runner (``time.perf_counter()`` deltas), never in result-bearing
  engine code;
* global ``random.*`` calls — randomness must flow through
  :func:`repro.utils.rng.derive_seed` / seeded ``random.Random`` streams,
  never the process-global generator;
* iterating a ``set``/``frozenset`` without ``sorted(...)`` — set order
  depends on ``PYTHONHASHSEED``, so any set-driven loop can reorder
  output records or hash inputs between runs;
* ``json.dumps(...)`` without ``sort_keys=True`` — canonical JSON is the
  substrate of ``cell_id``/``cache_key`` hashing; unsorted dumps make equal
  payloads hash unequal.
"""

from __future__ import annotations

import ast
from typing import Iterator, List

from repro.devtools.context import FileContext, is_engine_module
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule
from repro.devtools.rules._util import callee_name, import_aliases

#: members of :mod:`random` that are deterministic when explicitly seeded
#: (instantiating a private ``Random(seed)`` stream is the sanctioned idiom).
_SEEDED_RANDOM_OK = frozenset({"Random", "SystemRandom"})


def _is_setish(node: ast.AST) -> bool:
    """Expressions whose iteration order depends on the hash seed."""
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    if isinstance(node, ast.Call) and callee_name(node) in ("set", "frozenset"):
        return True
    if isinstance(node, ast.BinOp):  # set algebra: set(a) | set(b), a - b, ...
        return _is_setish(node.left) or _is_setish(node.right)
    return False


@register_rule
class EngineDeterminism(Rule):
    code = "REP103"
    name = "engine-determinism"
    category = "determinism"
    description = "time.time()/global random/unsorted set iteration/unsorted json.dumps in engine code"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if not is_engine_module(ctx.path):
            return iter(())
        return iter(self._check(ctx))

    def _check(self, ctx: FileContext) -> List[Finding]:
        findings: List[Finding] = []
        time_mods, time_members = import_aliases(ctx.tree, "time")
        rand_mods, rand_members = import_aliases(ctx.tree, "random")
        json_mods, json_members = import_aliases(ctx.tree, "json")

        def flag(node: ast.AST, message: str) -> None:
            findings.append(
                Finding(
                    path=ctx.path,
                    line=node.lineno,
                    column=node.col_offset,
                    code=self.code,
                    message=message,
                )
            )

        for node in ast.walk(ctx.tree):
            if isinstance(node, ast.Call):
                func = node.func
                # time.time() — wall clock in engine code
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "time"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in time_mods
                ) or (
                    isinstance(func, ast.Name)
                    and time_members.get(func.id) == "time"
                ):
                    flag(
                        node,
                        "time.time() in an engine module; timing belongs in "
                        "runner-stamped timing fields (time.perf_counter() deltas)",
                    )
                # process-global random.*
                if (
                    isinstance(func, ast.Attribute)
                    and isinstance(func.value, ast.Name)
                    and func.value.id in rand_mods
                    and func.attr not in _SEEDED_RANDOM_OK
                ) or (
                    isinstance(func, ast.Name)
                    and func.id in rand_members
                    and rand_members[func.id] not in _SEEDED_RANDOM_OK
                ):
                    flag(
                        node,
                        "process-global random.* in an engine module; route "
                        "randomness through repro.utils.rng.derive_seed / a "
                        "seeded random.Random stream",
                    )
                # json.dumps without sort_keys=True
                if (
                    isinstance(func, ast.Attribute)
                    and func.attr == "dumps"
                    and isinstance(func.value, ast.Name)
                    and func.value.id in json_mods
                ) or (
                    isinstance(func, ast.Name)
                    and json_members.get(func.id) == "dumps"
                ):
                    sorted_kw = False
                    for keyword in node.keywords:
                        if keyword.arg is None:  # **kwargs: can't tell, trust it
                            sorted_kw = True
                        elif keyword.arg == "sort_keys" and not (
                            isinstance(keyword.value, ast.Constant)
                            and keyword.value.value is False
                        ):
                            sorted_kw = True
                    if not sorted_kw:
                        flag(
                            node,
                            "json.dumps() without sort_keys=True in an engine "
                            "module; canonical JSON backs cell_id/cache_key "
                            "hashing",
                        )
            # unsorted set iteration
            iters: List[ast.AST] = []
            if isinstance(node, (ast.For, ast.AsyncFor)):
                iters.append(node.iter)
            elif isinstance(node, (ast.ListComp, ast.SetComp, ast.DictComp, ast.GeneratorExp)):
                iters.extend(gen.iter for gen in node.generators)
            for iter_expr in iters:
                if _is_setish(iter_expr):
                    flag(
                        iter_expr,
                        "iterating a set in an engine module without sorted(...); "
                        "set order depends on PYTHONHASHSEED",
                    )
        return findings

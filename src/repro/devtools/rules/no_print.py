"""REP106 — library code logs; only CLI front ends print.

The library's output contract (``utils/logging.py``): importing or calling
:mod:`repro` never writes to stdout — benchmarks and experiments stream
progress through the namespaced ``repro.*`` loggers, which callers turn up
or down with one ``logging`` call and CI captures deterministically.  A
stray ``print()`` in library code bypasses the level switch, corrupts
piped/machine-read output (``--output json`` reports, JSONL sinks), and
can't be silenced by embedders.  CLI modules (``cli.py``/``__main__.py``)
are the presentation layer and are exempt.
"""

from __future__ import annotations

import ast
from typing import Iterator

from repro.devtools.context import FileContext, is_cli_module
from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, register_rule


@register_rule
class NoPrintInLibrary(Rule):
    code = "REP106"
    name = "no-print-in-library"
    category = "logging"
    description = "print() in library code; use repro.utils.logging.get_logger"

    def check_file(self, ctx: FileContext) -> Iterator[Finding]:
        if is_cli_module(ctx.path):
            return iter(())
        return iter(
            Finding(
                path=ctx.path,
                line=node.lineno,
                column=node.col_offset,
                code=self.code,
                message=(
                    "print() in library code; route output through "
                    "repro.utils.logging.get_logger(...) (CLI modules are exempt)"
                ),
            )
            for node in ast.walk(ctx.tree)
            if isinstance(node, ast.Call)
            and isinstance(node.func, ast.Name)
            and node.func.id == "print"
        )

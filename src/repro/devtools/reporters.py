"""Render findings as compiler-style text or as the machine JSON report.

The JSON schema (documented in ``docs/linting.md``, versioned like the
``BENCH_*.json`` contract in ``docs/bench_schema.md``)::

    {
      "version": 1,
      "tool": "repro-lint",
      "rules": ["REP101", ...],        # codes that actually ran
      "files_checked": 57,
      "findings": [
        {"code": "REP103", "rule": "engine-determinism",
         "category": "determinism", "path": "src/repro/core/x.py",
         "line": 12, "column": 4, "message": "..."},
        ...
      ]
    }

Findings are sorted by ``(path, line, column, code)`` before rendering, so
both reports are byte-stable for a given tree — CI can diff them.
"""

from __future__ import annotations

import json
from typing import List, Sequence

from repro.devtools.findings import Finding

__all__ = ["REPORT_VERSION", "render_text", "render_json"]

REPORT_VERSION = 1


def render_text(findings: Sequence[Finding], files_checked: int) -> str:
    """One line per finding plus a trailing summary line."""
    lines: List[str] = [f.render() for f in findings]
    noun = "finding" if len(findings) == 1 else "findings"
    files = "file" if files_checked == 1 else "files"
    lines.append(f"{len(findings)} {noun} in {files_checked} {files}")
    return "\n".join(lines)


def render_json(
    findings: Sequence[Finding], files_checked: int, rule_codes: Sequence[str]
) -> str:
    """The versioned JSON report (schema above)."""
    payload = {
        "version": REPORT_VERSION,
        "tool": "repro-lint",
        "rules": sorted(rule_codes),
        "files_checked": files_checked,
        "findings": [f.to_dict() for f in findings],
    }
    return json.dumps(payload, indent=2, sort_keys=True)

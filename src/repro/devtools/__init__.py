"""Project-specific static analysis: ``repro-lint``.

Nine PRs of engine growth rest on a handful of cross-cutting invariants —
``jobs=1 == jobs=N`` determinism, content-addressed ``cell_id`` stability,
picklable module-level pool workers, the deprecated-kwarg shim, the serve
layer's lock discipline.  Every one of them is *enforced* dynamically (the
differential suites, the ``-W error::DeprecationWarning`` CI job), but a
violation only surfaces after the offending code executes.  This package is
the static companion: a stdlib-only (:mod:`ast` + :mod:`tokenize`) analysis
framework plus the project rules (``REP101``–``REP108``) that make each
contract fail at review time instead of fuzz time.

The shape mirrors :mod:`repro.algorithms.registry`: rules are classes
registered under a stable code via :func:`~repro.devtools.registry.register_rule`,
the driver (:func:`~repro.devtools.driver.lint_paths`) parses every file
exactly once and runs file-local visitors plus project-level cross-module
checks, and findings flow through text or JSON reporters (schema in
``docs/linting.md``).  ``# repro: noqa[REPxxx]`` suppresses a finding on
its line — policy: every suppression carries a one-line justification.

Entry points: the ``repro-lint`` console script and the ``repro-holiday
lint`` subcommand, both backed by :func:`repro.devtools.cli.main`.
"""

from repro.devtools.findings import Finding
from repro.devtools.registry import Rule, available_rules, get_rule, register_rule

__all__ = ["Finding", "Rule", "available_rules", "get_rule", "register_rule"]

"""``repro-lint`` — the command-line front end of :mod:`repro.devtools`.

Usage::

    repro-lint src/                         # everything, text report
    repro-lint src/ --output json           # machine report (docs/linting.md)
    repro-lint src/ --select REP103,REP105  # only these rules
    repro-lint src/ --ignore REP106         # all but these
    repro-lint --list-rules                 # the registered rule table

Exit codes (CI contract): ``0`` no findings, ``1`` findings, ``2`` the lint
could not run (bad path, syntax error, unknown rule code).  Also reachable
as ``repro-holiday lint ...`` and ``python -m repro.devtools.cli``.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional, Sequence

from repro.analysis.tables import render_table
from repro.devtools.driver import LintError, lint_paths
from repro.devtools.registry import available_rules, select_rules
from repro.devtools.reporters import render_json, render_text

__all__ = ["main", "build_parser"]


def _codes(value: str) -> List[str]:
    """Parse a comma-separated code list (``REP103,REP105``)."""
    return [code.strip().upper() for code in value.split(",") if code.strip()]


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-lint",
        description=(
            "Invariant-aware static analysis for the repro codebase: "
            "determinism, picklability and hashing contracts at the AST level."
        ),
    )
    parser.add_argument("paths", nargs="*", help="files or directories to lint")
    parser.add_argument(
        "--select",
        type=_codes,
        default=[],
        metavar="CODES",
        help="comma-separated rule codes/prefixes to run (default: all)",
    )
    parser.add_argument(
        "--ignore",
        type=_codes,
        default=[],
        metavar="CODES",
        help="comma-separated rule codes/prefixes to skip",
    )
    parser.add_argument(
        "--output",
        choices=("text", "json"),
        default="text",
        help="report format (json schema: docs/linting.md)",
    )
    parser.add_argument(
        "--list-rules",
        action="store_true",
        help="print the registered rule table and exit",
    )
    return parser


def main(argv: Optional[Sequence[str]] = None) -> int:
    args = build_parser().parse_args(argv)

    if args.list_rules:
        rows = [[r.code, r.name, r.category, r.description] for r in available_rules()]
        print(render_table(["code", "rule", "category", "description"], rows,
                           title="registered lint rules"))
        return 0

    if not args.paths:
        print("error: no paths given (try: repro-lint src/)", file=sys.stderr)
        return 2

    try:
        findings, files_checked = lint_paths(args.paths, args.select, args.ignore)
    except LintError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    ran = [r.code for r in select_rules(args.select, args.ignore)]
    if args.output == "json":
        print(render_json(findings, files_checked, ran))
    else:
        print(render_text(findings, files_checked))
    return 1 if findings else 0


if __name__ == "__main__":  # pragma: no cover - exercised via console script
    sys.exit(main())

"""The lint driver: discover, parse once, run rules, filter noqa, sort.

``lint_paths`` is the library entry point the CLI and the test suite share.
Every ``.py`` file is parsed exactly once into a
:class:`~repro.devtools.context.FileContext`; file-local rules then visit
each tree independently and project rules see the whole
:class:`~repro.devtools.context.Project`, so adding a rule never adds a
parse pass.
"""

from __future__ import annotations

from pathlib import Path
from typing import List, Sequence, Tuple

from repro.devtools.context import FileContext, Project
from repro.devtools.findings import Finding
from repro.devtools.noqa import suppresses
from repro.devtools.registry import Rule, select_rules

# importing the rules package registers the built-in rule set
import repro.devtools.rules  # noqa: F401  (import for side effect)

__all__ = ["LintError", "iter_python_files", "lint_paths"]


class LintError(Exception):
    """A problem with the lint invocation itself (bad path, syntax error).

    Distinct from findings: findings are exit code 1, a ``LintError`` is
    exit code 2 — CI can tell "contract violated" from "lint never ran".
    """


def iter_python_files(paths: Sequence[str]) -> List[Path]:
    """Expand files and directories into a sorted list of ``.py`` files."""
    out: List[Path] = []
    for raw in paths:
        path = Path(raw)
        if path.is_dir():
            out.extend(
                p for p in sorted(path.rglob("*.py")) if "__pycache__" not in p.parts
            )
        elif path.is_file():
            out.append(path)
        else:
            raise LintError(f"no such file or directory: {raw}")
    if not out:
        raise LintError(f"no Python files found under: {', '.join(map(str, paths))}")
    return out


def _display(path: Path) -> str:
    """Stable display path: relative to the CWD when under it, else as given."""
    try:
        return str(path.resolve().relative_to(Path.cwd()))
    except ValueError:
        return str(path)


def lint_paths(
    paths: Sequence[str],
    select: Sequence[str] = (),
    ignore: Sequence[str] = (),
) -> Tuple[List[Finding], int]:
    """Lint every Python file under ``paths``.

    Returns ``(findings, files_checked)`` with findings noqa-filtered and
    sorted by ``(path, line, column, code)``.  Raises :class:`LintError`
    for unreadable paths, syntax errors, or unknown ``select``/``ignore``
    codes.
    """
    try:
        rules: List[Rule] = select_rules(select, ignore)
    except ValueError as exc:
        raise LintError(str(exc))

    contexts: List[FileContext] = []
    for path in iter_python_files(paths):
        display = _display(path)
        try:
            contexts.append(FileContext.parse(path, display))
        except (SyntaxError, UnicodeDecodeError) as exc:
            raise LintError(f"cannot parse {display}: {exc}")

    project = Project(files=contexts)
    findings: List[Finding] = []
    for ctx in contexts:
        for rule in rules:
            findings.extend(rule.check_file(ctx))
    for rule in rules:
        findings.extend(rule.check_project(project))

    noqa_by_path = {ctx.path: ctx.noqa for ctx in contexts}
    kept = [
        f
        for f in findings
        if not suppresses(noqa_by_path.get(f.path, {}), f.line, f.code)
    ]
    return sorted(set(kept)), len(contexts)

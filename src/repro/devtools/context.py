"""Parsed-file and project contexts handed to rules, plus path roles.

Each file is read and parsed exactly once (:class:`FileContext` carries the
source, the AST and the noqa map); :class:`Project` is the full set, which
project-level rules (e.g. the :data:`REP104 <repro.devtools.rules.config_contract>`
``EngineConfig`` contract) consume whole.

Rules scope themselves by *path role*, derived structurally so the same
rule applies to ``src/repro/...`` and to the test fixture corpus alike:

* **engine modules** (determinism contracts): any file under a ``core``
  directory, plus ``analysis/engine.py``;
* **serve modules** (lock discipline, error envelopes): any file under a
  ``serve`` directory;
* **cli modules** (exempt from the no-print rule): ``cli.py`` /
  ``__main__.py``.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from pathlib import Path, PurePath
from typing import Dict, FrozenSet, List

from repro.devtools.noqa import parse_noqa

__all__ = [
    "FileContext",
    "Project",
    "is_engine_module",
    "is_serve_module",
    "is_cli_module",
]


@dataclass
class FileContext:
    """One source file, parsed once: path, source text, AST, noqa map."""

    path: str  # display path (as given / relative)
    source: str
    tree: ast.Module
    noqa: Dict[int, FrozenSet[str]] = field(default_factory=dict)

    @classmethod
    def parse(cls, path: Path, display: str) -> "FileContext":
        """Read and parse ``path``; propagates :class:`SyntaxError`."""
        source = path.read_text(encoding="utf-8")
        tree = ast.parse(source, filename=display)
        return cls(path=display, source=source, tree=tree, noqa=parse_noqa(source))


@dataclass
class Project:
    """Every parsed file of one lint invocation, in discovery order."""

    files: List[FileContext]


def _parts(path: str) -> tuple:
    return PurePath(path).parts


def is_engine_module(path: str) -> bool:
    """Files bound by the determinism contracts (REP103 scope)."""
    parts = _parts(path)
    name = parts[-1] if parts else ""
    return "core" in parts[:-1] or (name == "engine.py" and "analysis" in parts[:-1])


def is_serve_module(path: str) -> bool:
    """Files bound by the serving-layer contracts (REP105/REP108 scope)."""
    return "serve" in _parts(path)[:-1]


def is_cli_module(path: str) -> bool:
    """Command-line front ends, exempt from the no-print rule (REP106)."""
    parts = _parts(path)
    name = parts[-1] if parts else ""
    return name in ("cli.py", "__main__.py")

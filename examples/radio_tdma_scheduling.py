#!/usr/bin/env python3
"""Interference-free radio transmission scheduling (the paper's application).

Deploys radios on the unit square, derives the unit-disk interference graph,
and uses the paper's schedulers as TDMA-style slot schedulers:

* the degree-bound periodic scheduler (§5) gives every radio a transmission
  slot every ``2^{⌈log(d+1)⌉}`` slots, where ``d`` is the number of radios it
  interferes with — dense areas share the air more, sparse areas transmit
  almost every slot;
* the phased-greedy scheduler (§3) achieves slightly better worst-case
  latency (``d+1``) but must stay awake every slot to coordinate, which the
  energy model makes expensive.

Run with::

    python examples/radio_tdma_scheduling.py [num_radios] [radius] [seed]
"""

from __future__ import annotations

import sys

from repro.algorithms.color_periodic import ColorPeriodicScheduler
from repro.algorithms.degree_periodic import DegreePeriodicScheduler
from repro.algorithms.phased_greedy import PhasedGreedyScheduler
from repro.analysis.tables import render_table
from repro.coloring.dsatur import dsatur_coloring
from repro.radio.deployment import clustered_deployment
from repro.radio.energy import EnergyModel
from repro.radio.interference import interference_graph
from repro.radio.simulation import RadioSimulation


def main(num_radios: int = 60, radius: float = 0.18, seed: int = 5) -> None:
    deployment = clustered_deployment(num_radios, clusters=4, spread=0.08, seed=seed)
    graph = interference_graph(deployment, radius)
    print(
        f"Deployment: {num_radios} radios, interference radius {radius} -> "
        f"{graph.num_edges()} interfering pairs, max degree {graph.max_degree()}\n"
    )

    horizon = 256
    model = EnergyModel(tx_cost=20.0, listen_cost=10.0, sleep_cost=0.1)
    schedulers = [
        ("degree-periodic (§5)", DegreePeriodicScheduler()),
        ("color-periodic omega (§4, DSATUR)", ColorPeriodicScheduler(coloring_fn=dsatur_coloring)),
        ("phased-greedy (§3, online)", PhasedGreedyScheduler(initial_coloring="greedy")),
    ]

    rows = []
    for label, scheduler in schedulers:
        schedule = scheduler.build(graph, seed=seed)
        simulation = RadioSimulation(graph, schedule, energy_model=model)
        log = simulation.run(horizon)
        energy = simulation.energy(log)
        worst_silence = max(log.longest_silence(p) for p in graph.nodes())
        rows.append(
            [
                label,
                log.total_transmissions,
                log.total_collisions,
                worst_silence,
                round(energy.mean, 1),
                round(energy.max, 1),
            ]
        )

    print(
        render_table(
            [
                "scheduler",
                "transmissions",
                "collisions",
                "worst silence (slots)",
                "mean energy/radio",
                "max energy/radio",
            ],
            rows,
            title=f"TDMA simulation over {horizon} slots",
        )
    )
    print(
        "\nPeriodic schedules (first two rows) let radios sleep between their slots;"
        "\nthe online scheduler pays idle-listening energy every slot."
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 60
    r = float(sys.argv[2]) if len(sys.argv) > 2 else 0.18
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 5
    main(n, r, seed)

#!/usr/bin/env python3
"""Quickstart: schedule holiday gatherings for a small extended family network.

The scenario: seven families whose children intermarried.  We build the
conflict graph, open one :class:`repro.api.Session` over it, run the paper's
three schedulers, print a 16-year calendar and verify each algorithm's
per-node guarantee — the session builds each schedule's occupancy trace once
and shares it between the metric suite and the validator.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    ColorPeriodicScheduler,
    ConflictGraph,
    DegreePeriodicScheduler,
    EngineConfig,
    PhasedGreedyScheduler,
    Session,
)
from repro.analysis.tables import render_table


def build_family_network() -> ConflictGraph:
    """Seven families; an edge means a child of one married a child of the other."""
    marriages = [
        ("Adams", "Brown"),
        ("Adams", "Chen"),
        ("Brown", "Chen"),
        ("Chen", "Diaz"),
        ("Diaz", "Evans"),
        ("Evans", "Fischer"),
        ("Fischer", "Garcia"),
        ("Garcia", "Adams"),
    ]
    return ConflictGraph.from_couples(marriages, name="quickstart-families")


def print_calendar(schedule, graph, years: int) -> None:
    rows = []
    for year, happy in schedule.iter_holidays(years):
        rows.append([year, ", ".join(sorted(happy)) or "(nobody)"])
    print(render_table(["year", "families hosting all their children"], rows))
    print()


def main() -> None:
    graph = build_family_network()
    print(f"Conflict graph: {graph.num_nodes()} families, {graph.num_edges()} marriages")
    print(f"Degrees: { {p: graph.degree(p) for p in graph.nodes()} }\n")

    # One session owns the engine configuration for every run below.  The
    # default EngineConfig() is right for a graph this size; the same object
    # scales to 10^8-holiday horizons by flipping knobs, e.g.
    # EngineConfig(horizon_mode="stream", stream_jobs=4).
    session = Session(graph, config=EngineConfig())

    schedulers = [
        ("Phased Greedy (§3, aperiodic, mul ≤ deg+1)", PhasedGreedyScheduler(initial_coloring="greedy")),
        ("Elias-omega color-bound (§4, periodic)", ColorPeriodicScheduler()),
        ("Degree-bound periodic (§5, period ≤ 2·deg)", DegreePeriodicScheduler()),
    ]

    for title, scheduler in schedulers:
        schedule = scheduler.build(graph, seed=1)
        print(f"=== {title} ===")
        print_calendar(schedule, graph, years=16)

        horizon = 64
        bound = scheduler.bound_function(graph)
        # evaluate() and validate() share one occupancy trace per
        # (schedule, horizon) — no manual trace= threading.
        report = session.evaluate(schedule, horizon, name=scheduler.name)
        validation = session.validate(
            schedule, horizon, bound=bound, bound_name=scheduler.info.local_bound
        )
        rows = [
            [
                family,
                graph.degree(family),
                report.muls[family],
                f"{bound(family):g}" if bound else "-",
                report.periods[family] if report.periods[family] is not None else "varies",
            ]
            for family in graph.nodes()
        ]
        print(
            render_table(
                ["family", "in-laws", "worst wait (mul)", "paper bound", "observed period"],
                rows,
            )
        )
        status = "OK" if validation.ok else "VIOLATED"
        print(f"guarantee check over {horizon} years: {status}\n")

    spec_driven_sweep()


def spec_driven_sweep() -> None:
    """The same comparison, declaratively: one spec, many scenarios.

    An :class:`ExperimentSpec` names registry workloads instead of building
    graphs by hand and carries one ``EngineConfig`` for every cell; the
    engine runs the cartesian product (in parallel with ``jobs=N``,
    resumably with ``sink=``/``resume=True``) and returns a pivotable
    :class:`ResultSet`.
    """
    from repro.analysis.engine import ExperimentEngine, ExperimentSpec

    spec = ExperimentSpec(
        name="quickstart-sweep",
        workloads=("small/star", "small/cycle", "small/gnp"),
        algorithms=("phased-greedy", "color-periodic-omega", "degree-periodic"),
        horizon=64,
        config=EngineConfig(batch=4),  # backend/horizon_mode/chunk/stream_jobs/window/batch
    )
    results = ExperimentEngine(jobs=1).run(spec)
    pivot = results.pivot("mean_norm_gap")
    print("=== Spec-driven sweep: mean normalised gap per workload × scheduler ===")
    rows = [[w] + [round(pivot[w][a], 3) for a in spec.algorithms] for w in pivot]
    print(render_table(["workload"] + list(spec.algorithms), rows))


if __name__ == "__main__":
    main()

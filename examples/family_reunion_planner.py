#!/usr/bin/env python3
"""Family reunion planner over a realistic random society.

Generates a "marriage society" (families, children, couples) matching the
paper's motivation, then:

1. compares all registered schedulers on the derived conflict graph
   (who gives the most local / fair schedule?);
2. runs the Appendix A analysis on the same society: maximum one-shot
   happiness (greedy MIS), maximum satisfaction (matching vs. the paper's
   linear-time algorithm), and the alternating satisfaction schedule.

Run with::

    python examples/family_reunion_planner.py [num_families] [seed]
"""

from __future__ import annotations

import sys

from repro.algorithms.registry import available_schedulers
from repro.analysis.runner import compare_schedulers
from repro.analysis.tables import render_table
from repro.graphs.society import random_society
from repro.satisfaction.independent_set import greedy_independent_set
from repro.satisfaction.satisfaction import (
    alternating_satisfaction_schedule,
    max_satisfaction_by_matching,
    satisfaction_gaps,
    single_child_first_satisfaction,
)


def main(num_families: int = 80, seed: int = 7) -> None:
    society = random_society(
        num_families=num_families, mean_children=2.6, marriage_fraction=0.8, blocks=4,
        homophily=0.3, seed=seed,
    )
    graph = society.conflict_graph(name=f"society-{num_families}")
    print(f"Society: {society.num_families()} families, {society.num_couples()} couples")
    print(f"Conflict graph: {graph.num_edges()} in-law relations, max degree {graph.max_degree()}")
    print(f"Degree histogram: {society.degree_histogram()}\n")

    # ------------------------------------------------------------------ scheduling
    scheduler_names = [
        name
        for name in available_schedulers()
        if name
        in {
            "sequential",
            "round-robin-color",
            "first-come-first-grab",
            "phased-greedy",
            "color-periodic-omega",
            "color-periodic-omega-dsatur",
            "degree-periodic",
        }
    ]
    results = compare_schedulers({graph.name: graph}, scheduler_names, experiment="reunion", seed=seed)
    metric_names = ["max_mul", "mean_mul", "max_norm_gap", "mean_norm_gap", "fairness"]
    rows = [
        [r.algorithm] + [r.metrics.get(m) for m in metric_names] + [bool(r.metrics.get("legal"))]
        for r in results
    ]
    print(
        render_table(
            ["scheduler"] + metric_names + ["legal"],
            rows,
            title="Scheduler comparison (lower mul / norm-gap is better, fairness closer to 1 is better)",
        )
    )
    best = results.best_algorithm_per_workload("mean_norm_gap")[graph.name]
    print(f"\nMost degree-local schedule on this society: {best}\n")

    # ------------------------------------------------------------------ appendix A
    mis = greedy_independent_set(graph)
    print(f"One-shot happiness (greedy max independent set): {len(mis)} of {graph.num_nodes()} families")

    matching = max_satisfaction_by_matching(society)
    greedy = single_child_first_satisfaction(society)
    print(f"Maximum satisfaction (Hopcroft–Karp matching): {matching.num_satisfied} families")
    print(f"Maximum satisfaction (linear-time single-child-first): {greedy.num_satisfied} families")
    print(f"  - of which trivially satisfied by an unmarried child: {len(matching.trivially_satisfied)}")

    schedule = alternating_satisfaction_schedule(society, horizon=10)
    gaps = satisfaction_gaps(schedule, society)
    print(
        "Alternating schedule: every family with children is satisfied at least every "
        f"other year (worst observed gap = {max(gaps.values()) if gaps else 0})"
    )


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 80
    seed = int(sys.argv[2]) if len(sys.argv) > 2 else 7
    main(n, seed)

#!/usr/bin/env python3
"""The dynamic setting (§6): marriages and divorces after the schedule is live.

Starts from a society's conflict graph scheduled with the color-bound
construction, then streams marriage and divorce events.  After every event
the affected family recolors itself (its palette grew or shrank with its
degree) and derives a new periodic slot from the prefix-free code of its new
color; the example reports how long each affected family had to wait before
hosting again, versus the paper's ``φ(d)·2^{log* d + 1}`` recovery bound.

Run with::

    python examples/dynamic_marriages.py [num_families] [num_events] [seed]
"""

from __future__ import annotations

import sys

from repro.algorithms.dynamic import DynamicColorBoundScheduler, GraphEvent
from repro.analysis.tables import render_table
from repro.core.phi import elias_period_bound
from repro.graphs.society import random_society
from repro.utils.rng import RngStream


def random_events(graph, num_events: int, horizon: int, seed: int):
    """A mixed stream of marriages (non-edges) and divorces (existing edges)."""
    rng = RngStream(seed, "events")
    nodes = graph.nodes()
    events = []
    holiday = 5
    for _ in range(num_events):
        holiday += int(rng.integers(3, 12))
        if holiday >= horizon:
            break
        if rng.random() < 0.7:
            for _ in range(50):
                u, v = (nodes[int(rng.integers(0, len(nodes)))] for _ in range(2))
                if u != v and not graph.has_edge(u, v):
                    events.append(GraphEvent(holiday=holiday, kind="marry", u=u, v=v))
                    graph.add_edge(u, v)  # track on a shadow copy to avoid duplicates
                    break
        else:
            edges = graph.edges()
            if edges:
                u, v = edges[int(rng.integers(0, len(edges)))]
                events.append(GraphEvent(holiday=holiday, kind="divorce", u=u, v=v))
                graph.remove_edge(u, v)
    return events


def main(num_families: int = 50, num_events: int = 12, seed: int = 11) -> None:
    society = random_society(num_families, mean_children=2.4, marriage_fraction=0.75, seed=seed)
    graph = society.conflict_graph(name=f"dynamic-society-{num_families}")
    horizon = 400

    shadow = graph.copy()
    events = random_events(shadow, num_events, horizon, seed)
    print(f"Society of {num_families} families; applying {len(events)} topology events over {horizon} holidays\n")

    scheduler = DynamicColorBoundScheduler(graph)
    result = scheduler.simulate(events, horizon=horizon)

    rows = []
    for event in events:
        rows.append([event.holiday, event.kind, f"{event.u}-{event.v}"])
    print(render_table(["holiday", "event", "families"], rows, title="Event stream"))
    print()

    rows = []
    for record in result.recolorings:
        recovery = result.recovery[(record.holiday, record.node)]
        degree = scheduler.graph.degree(record.node)
        bound = elias_period_bound(max(degree + 1, record.new_color))
        rows.append(
            [
                record.holiday,
                record.node,
                record.reason,
                record.old_color,
                record.new_color,
                recovery if recovery is not None else "not yet",
                round(bound, 1),
            ]
        )
    print(
        render_table(
            ["holiday", "family", "reason", "old color", "new color", "holidays to next hosting", "§6 bound"],
            rows,
            title="Recolorings triggered by events",
        )
    )
    recovered = [v for v in result.recovery.values() if v is not None]
    if recovered:
        print(f"\nWorst observed recovery: {max(recovered)} holidays")
    print(f"Total recolorings: {result.num_recolorings} (one per color collision, as predicted)")


if __name__ == "__main__":
    n = int(sys.argv[1]) if len(sys.argv) > 1 else 50
    k = int(sys.argv[2]) if len(sys.argv) > 2 else 12
    seed = int(sys.argv[3]) if len(sys.argv) > 3 else 11
    main(n, k, seed)
